"""The multi-tenant socket front door.

One :class:`ServingServer` owns an ``asyncio`` event loop on a
background thread and hosts any number of tenants, each a fully
independent :class:`~repro.core.system.SecureXMLSystem` (own keyring,
own hosted tree, own epoch history) registered under a tenant id.  The
wire protocol is the length-prefixed framing of
:mod:`repro.serving.framing`; payloads are the *existing* sealed wire
blobs, so the server's security posture is unchanged — the socket layer
never sees a key it didn't already hold as the tenant's host.

Execution model
---------------

The event loop does I/O only.  Every admitted request is dispatched to
a thread pool (`run_in_executor`) where the synchronous pipeline — the
same :meth:`~repro.core.server.Server.answer_wire` the in-process path
calls — runs to completion; the loop meanwhile keeps reading frames, so
many requests per connection are genuinely in flight at once and
responses are matched by request id, not order.

Concurrency within a tenant is a readers–writer discipline:
queries/streams/naive ships share a read lock, updates and cache
flushes take the write lock (writer-priority, so a steady query stream
cannot starve updates).  Combined with the
:class:`~repro.core.server.Server` cache lock and the
:class:`~repro.core.encryptor.HostedDatabase` anchor lock, a reader can
never observe a half-applied update or a torn ``(epoch, root)`` pair.

Admission control and drain
---------------------------

A bounded in-flight counter guards the pool: past ``max_inflight`` the
server answers with a typed :class:`BackpressureRejected` **before** any
work is done, which the remote system's retry loop absorbs like a
dropped transfer.  :meth:`ServingServer.drain` is the graceful
shutdown: stop accepting connections, reject new requests as
:class:`ServerDraining`, let every in-flight request finish, then flush
each tenant's caches and (for tenants registered with a storage
directory) persist through :func:`repro.core.storage.save_system`,
whose stage-then-commit protocol fsyncs everything durable.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager, suppress
from typing import TYPE_CHECKING, Iterator

from repro.core.integrity import (
    FRESH_HEADER,
    FRESH_OVERHEAD,
    ReplayedCommandError,
    RollbackDetectedError,
    TamperedRequestError,
    peek_epoch,
    seal,
    unseal_fresh,
)
from repro.core.system import SecureXMLSystem
from repro.core.updates import UpdateError
from repro.obs import Observability
from repro.perf import counters

from repro.serving.errors import (
    BackpressureRejected,
    ProtocolError,
    ServerDraining,
    UnknownTenantError,
    encode_error,
)
from repro.serving.framing import (
    OP_CHUNK,
    OP_END,
    OP_ERROR,
    OP_FLUSH,
    OP_HELLO,
    OP_HELLO_OK,
    OP_NAIVE,
    OP_OK,
    OP_QUERY,
    OP_QUERY_STREAM,
    OP_STATS,
    OP_UPDATE,
    PROTOCOL_VERSION,
    FrameError,
    encode_frame,
    read_frame,
)
from repro.serving.gateway import ClusterGateway

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    pass

#: Sentinel the stream pump uses to detect generator exhaustion across
#: the executor boundary.
_STREAM_DONE = object()

#: Update operations a sealed OP_UPDATE payload may name, mapped to the
#: system methods that apply them.
_UPDATE_OPS = ("insert_element", "delete_element", "update_value")


class ReadWriteLock:
    """Writer-priority readers–writer lock (context-manager API).

    Plain condition-variable construction: readers share, a writer is
    exclusive, and a *waiting* writer blocks new readers so a steady
    query stream cannot starve updates.  Acquire and release may happen
    on different threads (the streaming path enters the read lock on
    one pool thread and may release on another), which is why this is
    built on a condition rather than on ``threading.Lock`` ownership.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    @contextmanager
    def read(self) -> Iterator[None]:
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextmanager
    def write(self) -> Iterator[None]:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
                self._writer_active = True
            finally:
                self._writers_waiting -= 1
        try:
            yield
        finally:
            with self._cond:
                self._writer_active = False
                self._cond.notify_all()


class TenantSession:
    """One hosted tenant: its system, session keys, and request surface.

    All methods here are synchronous and run on the serving thread
    pool.  Cluster tenants are served through a
    :class:`~repro.serving.gateway.ClusterGateway` so the wire surface
    (monolithic sealed request → sealed response) is identical for both
    execution engines.
    """

    def __init__(
        self,
        tenant_id: str,
        system: SecureXMLSystem,
        storage_dir: str | None = None,
        freshness_window: int = 0,
    ) -> None:
        self.tenant_id = tenant_id
        self.system = system
        self.storage_dir = storage_dir
        self._request_key, self._response_key = (
            system.keyring.session_keys()
        )
        self._rw = ReadWriteLock()
        self._gateway = (
            ClusterGateway(system) if system.coordinator is not None else None
        )
        self._counts_lock = threading.Lock()
        self.op_counts: dict[str, int] = {}
        # Replay guard for sealed commands: MAC tag -> sealed epoch of
        # every command applied within the live freshness window (see
        # _register_command).  Own lock: stats commands verify under the
        # read lock, concurrently with each other.
        self._seen_command_tags: dict[bytes, int] = {}
        self._replay_lock = threading.Lock()
        # Many concurrent connections race the write path, so a request
        # sealed an instant before a concurrent commit must stay
        # acceptable: widen every underlying server's request-freshness
        # window (0 keeps the strict in-process rule).
        self.freshness_window = max(0, freshness_window)
        if self.freshness_window > 0:
            for server in self._servers():
                server.freshness_window = self.freshness_window

    def _servers(self):
        """Every core server this tenant's requests can reach."""
        servers = []
        if getattr(self.system, "server", None) is not None:
            servers.append(self.system.server)
        coordinator = self.system.coordinator
        if coordinator is not None:
            for replica_set in coordinator.replica_sets:
                for replica in replica_set.replicas:
                    servers.append(replica.server)
        return servers

    def _count(self, op_name: str) -> None:
        with self._counts_lock:
            self.op_counts[op_name] = self.op_counts.get(op_name, 0) + 1

    def _target(self):
        return self._gateway if self._gateway is not None else self.system.server

    # ------------------------------------------------------------------
    # Request surface (sync, executor-side)
    # ------------------------------------------------------------------
    def hello(self) -> dict[str, object]:
        with self._rw.read():
            return {
                "tenant": self.tenant_id,
                "protocol": PROTOCOL_VERSION,
                "backend": self.system.backend,
                "epoch": self.system.hosted.epoch,
                "cluster": self._gateway is not None,
            }

    def query(self, blob: bytes) -> bytes:
        self._count("query")
        with self._rw.read():
            return self._target().answer_wire(blob)

    def query_stream(
        self, blob: bytes, chunk_fragments: int
    ) -> Iterator[bytes]:
        self._count("stream")
        with self._rw.read():
            yield from self._target().answer_wire_stream(
                blob, chunk_fragments=chunk_fragments
            )

    def naive(self, blob: bytes) -> bytes:
        self._count("naive")
        with self._rw.read():
            return self._target().ship_all_wire(blob)

    def update(self, blob: bytes) -> bytes:
        """Apply one sealed update operation; returns a sealed ack.

        The request must be sealed fresh at a *recent* authentic anchor:
        the current one, or — within the tenant's bounded freshness
        window — one superseded by a concurrent writer while this
        command was waiting on the write lock (without the window, every
        commit would invalidate every queued update's seal, a thundering
        herd that livelocks sustained write loads).  A command older
        than the window gets the typed
        :class:`~repro.core.integrity.RollbackDetectedError` back and
        re-seals against the new epoch (bounded retries client-side).
        A command *blob* seen before gets the typed
        :class:`~repro.core.integrity.ReplayedCommandError` — the window
        never makes a captured update re-applicable (see
        :meth:`_register_command`).  The ack is sealed with the plain
        envelope (not the freshness one): by the time the client
        verifies it, a *further* update may legitimately have moved the
        anchor again, and the ack's job is authenticity, not freshness.
        """
        counters.add("serving_updates")
        self._count("update")
        with self._rw.write():
            op = self._open_command(blob)
            applied = self._apply_update(op)
            ack = json.dumps(
                {"applied": applied, "epoch": self.system.hosted.epoch},
                sort_keys=True,
            ).encode("utf-8")
            return seal(self._response_key, ack)

    def _open_command(self, blob: bytes) -> dict:
        """Verify, replay-check and decode one sealed command blob."""
        payload = self._open_fresh_command(blob)
        self._register_command(blob)
        try:
            op = json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise TamperedRequestError(
                "command payload is not valid JSON"
            ) from exc
        if not isinstance(op, dict):
            raise TamperedRequestError("command payload is not an object")
        return op

    def _register_command(self, blob: bytes) -> None:
        """Replay guard: one sealed command blob is accepted at most once.

        The bounded freshness window keeps a sealed command MAC-valid
        for up to ``freshness_window`` commits, so a wire adversary who
        captures an update blob could otherwise re-send it and have it
        re-applied — a bounded rollback.  The MAC tag identifies a
        sealed command uniquely (clients bind a random nonce into the
        payload, so even identical logical commands seal to distinct
        tags), and the freshness rule already bounds how long any tag
        stays acceptable — remembering the tags sealed within the live
        window is therefore a *complete* dedup with memory bounded by
        the window's write rate.  Only runs after
        :meth:`_open_fresh_command` authenticated the blob, so the tag
        and epoch read here are trusted bytes.
        """
        tag = blob[FRESH_HEADER:FRESH_OVERHEAD]
        sealed_epoch = peek_epoch(blob) or 0
        with self._replay_lock:
            horizon = self.system.hosted.epoch - self.freshness_window
            stale = [
                seen
                for seen, epoch in self._seen_command_tags.items()
                if epoch < horizon
            ]
            for seen in stale:
                del self._seen_command_tags[seen]
            if tag in self._seen_command_tags:
                counters.add("serving_replays_rejected")
                raise ReplayedCommandError(
                    "sealed command replayed within the freshness window"
                )
            self._seen_command_tags[tag] = sealed_epoch

    def _open_fresh_command(self, blob: bytes) -> bytes:
        """Unseal a freshness-sealed command, within the staleness window.

        Mirrors ``Server._open_fresh_request``: strict verification at
        the current anchor first; a seal at a just-superseded epoch is
        re-verified against the authentic historical root for that
        epoch, provided the lag fits the configured window.
        """
        hosted = self.system.hosted
        epoch, root = hosted.anchor()
        try:
            return unseal_fresh(
                self._request_key, blob, epoch, root,
                error=TamperedRequestError,
            )
        except RollbackDetectedError as stale:
            if (
                self.freshness_window <= 0
                or stale.epoch_lag > self.freshness_window
            ):
                raise
            historical = hosted.root_at(stale.observed_epoch)
            if historical is None:
                raise
            payload = unseal_fresh(
                self._request_key, blob, stale.observed_epoch, historical,
                error=TamperedRequestError,
            )
            counters.add("requests_accepted_in_window")
            return payload

    def _apply_update(self, op: dict) -> str:
        name = op.get("op")
        if name not in _UPDATE_OPS:
            raise UpdateError(f"unknown update operation {name!r}")
        if name == "insert_element":
            self.system.insert_element(
                op["parent_xpath"], op["tag"], op["value"]
            )
        elif name == "delete_element":
            self.system.delete_element(op["xpath"])
        else:
            self.system.update_value(op["xpath"], op["new_value"])
        return name

    def flush(self, blob: bytes) -> bytes:
        """Drop the tenant's warm caches; requires a sealed command.

        Flushing is a write-path admin operation with real cost (every
        cache refills cold), so it is authenticated exactly like an
        update: a freshness-sealed ``{"op": "flush"}`` command under the
        tenant's request key, replay-deduped within the window — an
        unauthenticated peer that knows the tenant id cannot drop the
        caches, and a captured flush blob cannot be re-sent.
        """
        self._count("flush")
        with self._rw.write():
            op = self._open_command(blob)
            if op.get("op") != "flush":
                raise TamperedRequestError(
                    "flush request carries a different command"
                )
            self.system.flush_caches()
            if self._gateway is not None:
                self._gateway.flush_caches()
            return seal(self._response_key, b"{}")

    def stats(self, blob: bytes) -> bytes:
        """Per-tenant serving statistics; requires a sealed command.

        Epoch and op counts are tenant metadata, so reading them takes
        the same sealed-command authentication as every other non-query
        op, and the response is sealed under the tenant's response key —
        a peer without the session keys gets a typed tamper error and
        learns nothing from a captured reply.
        """
        self._count("stats")
        op = self._open_command(blob)
        if op.get("op") != "stats":
            raise TamperedRequestError(
                "stats request carries a different command"
            )
        with self._counts_lock:
            ops = dict(self.op_counts)
        leakage = self.system.leakage
        payload = json.dumps(
            {
                "tenant": self.tenant_id,
                "epoch": self.system.hosted.epoch,
                "ops": ops,
                # Access-pattern countermeasure knobs this tenant serves
                # under (absent tier reported as all-off) — operators
                # audit the front door's posture through the same sealed
                # stats op the rest of the metadata uses.
                "leakage": {
                    "pad_to": leakage.policy.pad_to if leakage else 0,
                    "decoys": leakage.policy.decoys if leakage else 0,
                    "shuffle": bool(
                        leakage.policy.shuffle if leakage else False
                    ),
                    "traces": len(leakage.recorder) if leakage else 0,
                },
            },
            sort_keys=True,
        ).encode("utf-8")
        return seal(self._response_key, payload)

    # ------------------------------------------------------------------
    # Drain
    # ------------------------------------------------------------------
    def drain(self) -> None:
        """Flush caches and persist durable state (under the write lock)."""
        with self._rw.write():
            self.system.flush_caches()
            if self._gateway is not None:
                self._gateway.flush_caches()
            if self.storage_dir is not None:
                from repro.core.storage import save_system

                save_system(self.system, self.storage_dir)


class ServingServer:
    """Asyncio TCP front door over any number of tenant systems."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 64,
        workers: int | None = None,
        obs: "Observability | bool | None" = None,
        freshness_window: int = 16,
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.host = host
        self.port = port  # 0 until start() binds
        self._requested_port = port
        self.max_inflight = max_inflight
        #: Commits of request staleness tolerated per tenant server
        #: (bounded-window acceptance under concurrent writers; 0 keeps
        #: the strict single-writer rule).
        self.freshness_window = freshness_window
        self._obs = Observability.coerce(obs)
        self._executor = ThreadPoolExecutor(
            max_workers=workers or min(32, (os.cpu_count() or 4) + 4),
            thread_name_prefix="serving",
        )
        self._tenants: dict[str, TenantSession] = {}
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._server: asyncio.base_events.Server | None = None
        self._tasks: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        self._inflight = 0
        self._connections = 0
        self._draining = False
        self._drain_started = False
        self._drained = asyncio.Event()
        self._lifecycle = threading.Lock()

    # ------------------------------------------------------------------
    # Tenant registry
    # ------------------------------------------------------------------
    def register_tenant(
        self,
        tenant_id: str,
        system: SecureXMLSystem,
        storage_dir: str | None = None,
    ) -> TenantSession:
        if tenant_id in self._tenants:
            raise ValueError(f"tenant {tenant_id!r} already registered")
        session = TenantSession(
            tenant_id, system, storage_dir=storage_dir,
            freshness_window=self.freshness_window,
        )
        self._tenants[tenant_id] = session
        return session

    @property
    def tenants(self) -> dict[str, TenantSession]:
        return dict(self._tenants)

    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> tuple[str, int]:
        """Bind the listener and start serving; returns ``(host, port)``."""
        with self._lifecycle:
            if self._loop is not None:
                raise RuntimeError("serving server already started")
            loop = asyncio.new_event_loop()
            self._loop = loop
            self._thread = threading.Thread(
                target=self._run_loop,
                args=(loop,),
                name="serving-loop",
                daemon=True,
            )
            self._thread.start()
            future = asyncio.run_coroutine_threadsafe(
                self._open_listener(), loop
            )
            self.port = future.result(timeout=30)
            return (self.host, self.port)

    def _run_loop(self, loop: asyncio.AbstractEventLoop) -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_forever()
        finally:
            loop.close()

    async def _open_listener(self) -> int:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )
        return self._server.sockets[0].getsockname()[1]

    def drain(self, timeout: float | None = 60.0) -> None:
        """Graceful shutdown of serving (the loop itself keeps running).

        Stop accepting connections, refuse new requests with the typed
        :class:`ServerDraining`, wait for every in-flight request, then
        flush and persist every tenant.  Idempotent and safe to call
        concurrently — late callers wait for the first drain to finish.
        """
        loop = self._loop
        if loop is None or not loop.is_running():
            return
        future = asyncio.run_coroutine_threadsafe(self._drain_async(), loop)
        future.result(timeout=timeout)

    async def _drain_async(self) -> None:
        if self._drain_started:
            await self._drained.wait()
            return
        self._drain_started = True
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        pending = [task for task in self._tasks if not task.done()]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        loop = asyncio.get_running_loop()
        for session in self._tenants.values():
            await loop.run_in_executor(self._executor, session.drain)
        for writer in list(self._writers):
            writer.close()
        counters.add("serving_drains")
        self._drained.set()

    def stop(self, timeout: float | None = 60.0) -> None:
        """Drain (if not yet drained) and tear the loop down. Idempotent."""
        self.drain(timeout=timeout)
        with self._lifecycle:
            loop = self._loop
            if loop is None:
                return
            self._loop = None
            loop.call_soon_threadsafe(loop.stop)
            if self._thread is not None:
                self._thread.join(timeout=timeout)
                self._thread = None
            self._server = None
            self._executor.shutdown(wait=False)

    def __enter__(self) -> "ServingServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Connection handling (event-loop side)
    # ------------------------------------------------------------------
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        counters.add("serving_connections")
        self._connections += 1
        self._set_gauge("serving_connections", self._connections)
        write_lock = asyncio.Lock()
        self._writers.add(writer)
        try:
            session = await self._handshake(reader, writer, write_lock)
            if session is None:
                return
            while True:
                try:
                    rid, op, payload = await read_frame(reader)
                except FrameError:
                    return
                await self._dispatch(
                    session, rid, op, payload, writer, write_lock
                )
        finally:
            self._writers.discard(writer)
            self._connections -= 1
            self._set_gauge("serving_connections", self._connections)
            writer.close()
            with suppress(Exception):
                await writer.wait_closed()

    async def _handshake(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> TenantSession | None:
        try:
            rid, op, payload = await read_frame(reader)
        except FrameError:
            return None
        if op != OP_HELLO:
            await self._send_error(
                writer, write_lock, rid,
                ProtocolError(f"expected HELLO, got opcode {op}"),
            )
            return None
        try:
            hello = json.loads(payload.decode("utf-8"))
            tenant_id = hello["tenant"]
        except (ValueError, KeyError, UnicodeDecodeError):
            await self._send_error(
                writer, write_lock, rid,
                ProtocolError("HELLO payload must be JSON with a tenant"),
            )
            return None
        if self._draining:
            await self._send_error(
                writer, write_lock, rid, ServerDraining("server is draining")
            )
            return None
        session = self._tenants.get(tenant_id)
        if session is None:
            await self._send_error(
                writer, write_lock, rid,
                UnknownTenantError(f"unknown tenant {tenant_id!r}"),
            )
            return None
        loop = asyncio.get_running_loop()
        reply = await loop.run_in_executor(self._executor, session.hello)
        await self._send(
            writer, write_lock, rid, OP_HELLO_OK,
            json.dumps(reply, sort_keys=True).encode("utf-8"),
        )
        return session

    async def _dispatch(
        self,
        session: TenantSession,
        rid: int,
        op: int,
        payload: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        if op not in (
            OP_QUERY, OP_QUERY_STREAM, OP_NAIVE,
            OP_UPDATE, OP_FLUSH, OP_STATS,
        ):
            await self._send_error(
                writer, write_lock, rid,
                ProtocolError(f"unknown opcode {op}"),
            )
            return
        try:
            self._admit(session)
        except (BackpressureRejected, ServerDraining) as exc:
            await self._send_error(writer, write_lock, rid, exc)
            return
        task = asyncio.get_running_loop().create_task(
            self._run_request(session, rid, op, payload, writer, write_lock)
        )
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    def _admit(self, session: TenantSession) -> None:
        """Admission control: typed rejection before any work is queued."""
        if self._draining:
            raise ServerDraining("server is draining; request rejected")
        self._observe("serving_queue_depth", float(self._inflight))
        if self._inflight >= self.max_inflight:
            counters.add("backpressure_rejections")
            raise BackpressureRejected(
                f"in-flight queue full ({self.max_inflight} requests)"
            )
        self._inflight += 1
        self._set_gauge("serving_inflight", self._inflight)
        counters.add("serving_requests")
        if self._obs.enabled:
            self._obs.metrics.inc_labeled(
                "serving_tenant_requests", tenant=session.tenant_id
            )

    async def _run_request(
        self,
        session: TenantSession,
        rid: int,
        op: int,
        payload: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        loop = asyncio.get_running_loop()
        started = time.perf_counter()
        try:
            if op == OP_QUERY_STREAM:
                await self._run_stream(
                    session, rid, payload, writer, write_lock
                )
            else:
                handler = {
                    OP_QUERY: session.query,
                    OP_NAIVE: session.naive,
                    OP_UPDATE: session.update,
                    OP_FLUSH: session.flush,
                    OP_STATS: session.stats,
                }[op]
                blob = await loop.run_in_executor(
                    self._executor, handler, payload
                )
                await self._send(writer, write_lock, rid, OP_OK, blob)
        except (ConnectionError, FrameError):
            pass  # peer went away mid-response; nothing left to tell it
        except Exception as exc:  # typed errors travel as ERROR frames
            with suppress(ConnectionError, FrameError):
                await self._send_error(writer, write_lock, rid, exc)
        finally:
            self._inflight -= 1
            self._set_gauge("serving_inflight", self._inflight)
            self._observe(
                "serving_request_seconds", time.perf_counter() - started
            )

    async def _run_stream(
        self,
        session: TenantSession,
        rid: int,
        payload: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        if len(payload) < 4:
            raise ProtocolError("stream request missing chunk-count prefix")
        chunk_fragments = int.from_bytes(payload[:4], "big") or 8
        counters.add("serving_streams")
        loop = asyncio.get_running_loop()
        stream = session.query_stream(payload[4:], chunk_fragments)
        try:
            while True:
                chunk = await loop.run_in_executor(
                    self._executor, next, stream, _STREAM_DONE
                )
                if chunk is _STREAM_DONE:
                    break
                await self._send(writer, write_lock, rid, OP_CHUNK, chunk)
        finally:
            stream.close()
        await self._send(writer, write_lock, rid, OP_END, b"")

    # ------------------------------------------------------------------
    # Frame I/O and metric helpers
    # ------------------------------------------------------------------
    @staticmethod
    async def _send(
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        rid: int,
        op: int,
        payload: bytes,
    ) -> None:
        frame = encode_frame(rid, op, payload)
        async with write_lock:
            writer.write(frame)
            await writer.drain()

    async def _send_error(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        rid: int,
        exc: Exception,
    ) -> None:
        await self._send(writer, write_lock, rid, OP_ERROR, encode_error(exc))

    def _observe(self, name: str, value: float) -> None:
        if self._obs.enabled:
            self._obs.metrics.observe(name, value)

    def _set_gauge(self, name: str, value: float) -> None:
        if self._obs.enabled:
            self._obs.metrics.set_gauge(name, float(value))
