"""Candidate-database counting: the quantitative core of Theorems 4.1–5.2.

The paper's security arguments all have the same shape: given what the
attacker observes, count the plaintext databases that are consistent with
the observation.  Security holds when that count is "large" (exponential in
a domain/schema parameter) and the observation doesn't change the prior.
This module computes those counts exactly with big integers:

* :func:`database_candidates` — Theorem 4.1: with decoys, every plaintext
  value of frequency kᵢ maps to kᵢ distinct ciphertexts, so the attacker
  faces ``(Σkᵢ)! / Πkᵢ!`` consistent assignments (27 720 for the paper's
  k = (3,4,5) example).
* :func:`structural_candidates` — Theorem 5.1: an encryption block with nᵢ
  leaves shown as kᵢ grouped intervals admits ``C(nᵢ−1, kᵢ−1)`` subtree
  shapes; blocks multiply (1001 for the n = 15, k = 5 example).
* :func:`value_index_candidates` — Theorem 5.2: splitting k plaintext
  values into n ciphertext values admits ``C(n−1, k−1)`` order-preserving
  partitions.
"""

from __future__ import annotations

from math import comb, factorial
from typing import Iterable


def database_candidates(frequencies: Iterable[int]) -> int:
    """Theorem 4.1's count: (Σkᵢ)! / Π(kᵢ!).

    ``frequencies`` are the occurrence counts of the distinct plaintext
    values of one encrypted leaf field.  After per-occurrence decoy
    encryption the attacker sees Σkᵢ distinct ciphertexts of frequency 1;
    the number of ways to partition them back into the known frequency
    classes is the multinomial coefficient.
    """
    counts = list(frequencies)
    if any(count <= 0 for count in counts):
        raise ValueError("frequencies must be positive")
    total = sum(counts)
    result = factorial(total)
    for count in counts:
        result //= factorial(count)
    return result


def structural_candidates(blocks: Iterable[tuple[int, int]]) -> int:
    """Theorem 5.1's count: Π C(nᵢ−1, kᵢ−1) over encryption blocks.

    Each pair is ``(nᵢ, kᵢ)``: the block has nᵢ leaf nodes represented by
    kᵢ grouped intervals in the DSI table.  Each composition of nᵢ into kᵢ
    positive parts is a distinct candidate subtree shape.
    """
    result = 1
    for leaves, intervals in blocks:
        if not 1 <= intervals <= leaves:
            raise ValueError(
                f"need 1 <= intervals <= leaves, got ({leaves}, {intervals})"
            )
        result *= comb(leaves - 1, intervals - 1)
    return result


def value_index_candidates(ciphertext_values: int, plaintext_values: int) -> int:
    """Theorem 5.2's count: C(n−1, k−1) order-preserving partitions.

    ``n`` ciphertext values partitioned into ``k`` contiguous, non-empty,
    order-preserving groups — each a candidate mapping of ciphertexts back
    to plaintext values consistent with the observed index.
    """
    n, k = ciphertext_values, plaintext_values
    if not 1 <= k <= n:
        raise ValueError(f"need 1 <= k <= n, got (n={n}, k={k})")
    return comb(n - 1, k - 1)


def compositions(total: int, parts: int) -> list[tuple[int, ...]]:
    """All compositions of ``total`` into ``parts`` positive integers.

    The explicit enumeration backing :func:`structural_candidates` — used
    by tests to verify the closed form, and by the Figure 5 demo to show
    concrete candidate subtree shapes (7 = 1+1+5 = 1+2+4 = ...).
    """
    if parts == 1:
        return [(total,)] if total >= 1 else []
    out: list[tuple[int, ...]] = []
    for first in range(1, total - parts + 2):
        for rest in compositions(total - first, parts - 1):
            out.append((first,) + rest)
    return out


def paper_examples() -> dict[str, int]:
    """The worked numbers quoted in the paper, for the test suite."""
    return {
        # §4.1: k1=3, k2=4, k3=5 -> 27720 candidate databases.
        "thm41_345": database_candidates([3, 4, 5]),
        # §5.1: n=15, k=5 -> C(14,4) = 1001.
        "thm51_15_5": structural_candidates([(15, 5)]),
        # §5.1: n=7, k=3 -> 15 possible assignments (Figure 5 text).
        "thm51_7_3": structural_candidates([(7, 3)]),
        # §5.2: n=15, k=5 -> 1001 again (same binomial).
        "thm52_15_5": value_index_candidates(15, 5),
    }
