"""Axis-engine benchmark: blocks shipped vs the naive baseline.

Before the axis engine, every reverse/order/positional query fell off
the server-evaluable fragment and degraded to the naive protocol —
shipping the whole encrypted database.  This experiment quantifies what
the interval-algebra joins buy back: for a gate set of selective
ancestor/parent/sibling queries over the XMark corpus, the server now
ships only the surviving fragments, and the acceptance gate requires a
**≥5× aggregate reduction in blocks shipped** versus naive.

A second gate pins the planner: running the full axis-complete workload
(all thirteen axes plus positional predicates, three corpora) must leave
the ``naive_fallbacks`` counter untouched — no axis query is allowed to
reach the naive protocol anymore.

Results land in ``benchmarks/results/axes_vs_naive.txt`` (human table)
and ``BENCH_axes.json`` at the repository root (machine-readable gate).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.core.system import SecureXMLSystem
from repro.perf import counters
from repro.workloads.axes import AxisWorkload
from repro.workloads.healthcare import (
    build_healthcare_database,
    healthcare_constraints,
)
from repro.workloads.nasa import nasa_constraints
from repro.workloads.xmark import _CITIES, xmark_constraints

from conftest import BENCH_TRIALS, write_result

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_axes.json")

#: acceptance gate: aggregate naive/secure blocks-shipped ratio
MIN_BLOCK_REDUCTION = 5.0

#: Selective reverse/order-axis queries — the shapes the axis engine
#: exists for.  Each anchors on a value predicate so the server-side
#: semi-joins have something to prune (an unselective ``//x/..`` ships
#: every parent by definition and measures nothing).
GATE_QUERIES = (
    f"//address[city='{_CITIES[0]}']/ancestor::person",
    "//profile[income>=100000]/ancestor::person",
    "//profile[age<25]/parent::person",
    "//profile[income>=100000]/preceding-sibling::name",
    f"//address[city='{_CITIES[1]}']/following-sibling::profile",
    "//itemref/following-sibling::current",
    "//reserve/preceding-sibling::itemref",
)

_REPORT: dict[str, object] = {"trials": BENCH_TRIALS}


def _write_report() -> None:
    with open(BENCH_JSON, "w", encoding="utf-8") as handle:
        json.dump(_REPORT, handle, indent=2, sort_keys=True)
        handle.write("\n")


@pytest.fixture(scope="module")
def xmark_system(xmark_doc):
    return SecureXMLSystem.host(
        xmark_doc, xmark_constraints(), scheme="opt"
    )


class TestBlocksShippedVsNaive:
    def test_gate_queries_ship_5x_fewer_blocks(self, xmark_system):
        system = xmark_system
        rows = []
        report_rows = []
        total_secure = 0
        total_naive = 0
        for query in GATE_QUERIES:
            secure_s = []
            for _ in range(BENCH_TRIALS):
                started = time.perf_counter()
                answer = system.query(query)
                secure_s.append(time.perf_counter() - started)
            secure_blocks = system.last_trace.blocks_returned
            plan = system.last_trace.plan
            system.naive_query(query)
            naive_blocks = system.last_trace.blocks_returned
            assert not system.last_trace.naive or naive_blocks > 0
            total_secure += secure_blocks
            total_naive += naive_blocks
            ratio = naive_blocks / max(1, secure_blocks)
            rows.append(
                f"{ratio:8.1f}x  {secure_blocks:5d} vs {naive_blocks:5d}"
                f"  [{plan}]  answers={len(answer):3d}  {query}"
            )
            report_rows.append(
                {
                    "query": query,
                    "plan": plan,
                    "blocks_secure": secure_blocks,
                    "blocks_naive": naive_blocks,
                    "reduction": ratio,
                    "secure_s_min": min(secure_s),
                }
            )
        aggregate = total_naive / max(1, total_secure)
        _REPORT["vs_naive"] = {
            "queries": report_rows,
            "blocks_secure_total": total_secure,
            "blocks_naive_total": total_naive,
            "aggregate_reduction": aggregate,
            "gate_min_reduction": MIN_BLOCK_REDUCTION,
        }
        _write_report()
        write_result(
            "axes_vs_naive",
            "\n".join(
                [
                    "axis engine vs naive baseline (blocks shipped)",
                    f"aggregate reduction: {aggregate:.1f}x "
                    f"(gate: >= {MIN_BLOCK_REDUCTION:.0f}x)",
                ]
                + rows
            ),
        )
        assert aggregate >= MIN_BLOCK_REDUCTION, (
            f"axis plans shipped {total_secure} blocks vs naive "
            f"{total_naive}: {aggregate:.2f}x < {MIN_BLOCK_REDUCTION}x"
        )


class TestNoNaiveFallbacks:
    def test_axis_workload_never_reaches_naive(
        self, xmark_system, xmark_doc, nasa_doc
    ):
        healthcare_doc = build_healthcare_database()
        systems = [
            (xmark_system, xmark_doc),
            (
                SecureXMLSystem.host(
                    nasa_doc, nasa_constraints(), scheme="opt"
                ),
                nasa_doc,
            ),
            (
                SecureXMLSystem.host(
                    healthcare_doc, healthcare_constraints(), scheme="opt"
                ),
                healthcare_doc,
            ),
        ]
        before = counters.snapshot().get("naive_fallbacks", 0)
        plans: dict[str, int] = {}
        queries_run = 0
        for system, document in systems:
            for query in AxisWorkload(document, seed=7).queries():
                system.query(query)
                trace = system.last_trace
                assert not trace.naive, query
                plans[trace.plan] = plans.get(trace.plan, 0) + 1
                queries_run += 1
        fallbacks = counters.snapshot().get("naive_fallbacks", 0) - before
        _REPORT["axis_workload"] = {
            "queries": queries_run,
            "plans": plans,
            "naive_fallbacks": fallbacks,
        }
        _write_report()
        write_result(
            "axes_fallbacks",
            f"axis-complete workload: {queries_run} queries, "
            f"plans={plans}, naive_fallbacks={fallbacks}",
        )
        assert fallbacks == 0
