"""E6 — Figure 10: saving ratios of app/opt over top/sub.

Figure 10 reports S_{a/t} = (T_top − T_app)/T_top and its three siblings
for Qs/Qm/Ql on both databases.  The paper's observations:

* app and opt save more over top than over sub;
* the saving ratio grows as the query's output node moves toward the
  leaves (opt reaches ≈0.64 over top and ≈0.53 over sub for Ql on NASA).
"""

import pytest

from repro.bench.harness import format_table, run_query_class, saving_ratio

from conftest import SCHEMES, write_result

CLASSES = ("Qs", "Qm", "Ql")


def _run(systems, query_classes):
    totals = {}
    for kind in SCHEMES:
        for query_class in CLASSES:
            result = run_query_class(
                systems[kind], query_class, query_classes[query_class]
            )
            totals[(kind, query_class)] = result.total_s

    rows = []
    ratios = {}
    for query_class in CLASSES:
        row = [query_class]
        for label, better, worse in (
            ("a/t", "app", "top"),
            ("a/s", "app", "sub"),
            ("o/t", "opt", "top"),
            ("o/s", "opt", "sub"),
        ):
            ratio = saving_ratio(
                totals[(worse, query_class)], totals[(better, query_class)]
            )
            ratios[(label, query_class)] = ratio
            row.append(ratio)
        rows.append(row)
    return rows, ratios


@pytest.mark.parametrize("dataset", ["xmark", "nasa"])
def test_fig10_saving_ratios(
    benchmark, dataset, xmark_systems, nasa_systems, xmark_queries,
    nasa_queries,
):
    systems = xmark_systems if dataset == "xmark" else nasa_systems
    query_classes = xmark_queries if dataset == "xmark" else nasa_queries
    rows, ratios = benchmark.pedantic(
        _run, args=(systems, query_classes), rounds=1, iterations=1
    )
    table = format_table(
        ["class", "S_a/t", "S_a/s", "S_o/t", "S_o/s"],
        rows,
        f"Figure 10 — saving ratios, {dataset} database",
    )
    write_result(f"fig10_saving_ratios_{dataset}", table)

    # Shape: opt/app save over the top scheme on the mid- and leaf-level
    # classes.  (Qs outputs are root children — entire record subtrees —
    # where decrypting many small blocks can rival decrypting one big
    # one, so its sign is noise-prone at benchmark scale.)
    for query_class in ("Qm", "Ql"):
        assert ratios[("o/t", query_class)] > 0
        assert ratios[("a/t", query_class)] > 0
    # Savings over top exceed savings over sub (sub is already better
    # than top).
    mean_over_top = sum(
        ratios[("o/t", c)] for c in CLASSES
    ) / len(CLASSES)
    mean_over_sub = sum(
        ratios[("o/s", c)] for c in CLASSES
    ) / len(CLASSES)
    assert mean_over_top >= mean_over_sub - 0.05
    # Leaf-level queries reach substantial savings over top (paper: 0.64).
    assert ratios[("o/t", "Ql")] > 0.3
