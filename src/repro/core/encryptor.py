"""Hosting pipeline: encrypt a database under a scheme and build metadata.

This is the client-side preparation step of Figure 1: given the plaintext
database, the security constraints' chosen scheme and the keyring, produce

* the hosted tree — the original document with every encryption-block
  subtree replaced by an :class:`~repro.xmldb.node.EncryptedBlockNode`
  (decoys injected, AES-CBC encrypted with per-block IVs);
* the structural metadata — DSI index table + encryption block table;
* the value metadata — OPESS field plans (client-secret) and the B-tree
  value index (server-side);
* the translation knowledge — which tags/fields occur encrypted and/or in
  plaintext.

Everything here is deterministic in (document, scheme, master key), which
is what lets the client re-derive exactly the keys/weights used at hosting
time when translating queries later.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass, field

from repro.core.decoy import assert_no_reserved_tags, inject_decoys
from repro.core.dsi import (
    StructuralIndex,
    assign_intervals,
    build_structural_index,
)
from repro.core.opess import FieldPlan, ValueIndex, build_field_plan, build_value_index
from repro.core.scheme import EncryptionScheme
from repro.crypto.keyring import ClientKeyring
from repro.crypto.modes import cbc_encrypt
from repro.xmldb.node import (
    Attribute,
    Document,
    Element,
    EncryptedBlockNode,
    Node,
)
from repro.xmldb.serializer import serialize
from repro.xmldb.stats import leaf_field_name


@dataclass
class HostedDatabase:
    """Everything produced by hosting; split between server and client."""

    # --- server-side state ---
    hosted_root: Node
    structural_index: StructuralIndex
    value_index: ValueIndex
    blocks: dict[int, bytes]
    placeholders: dict[int, EncryptedBlockNode]

    # --- client-side knowledge ---
    root_tag: str
    encrypted_tags: set[str] = field(default_factory=set)
    plaintext_keys: set[str] = field(default_factory=set)
    field_plans: dict[str, FieldPlan] = field(default_factory=dict)
    field_tokens: dict[str, str] = field(default_factory=dict)
    #: Encrypt-then-MAC tag per block (client-computed, server-stored):
    #: HMAC-SHA256(block-mac key, block id ‖ ciphertext).  The client
    #: verifies these before decrypting, so a server that modifies or
    #: swaps ciphertexts is detected rather than silently believed.
    block_tags: dict[int, bytes] = field(default_factory=dict)
    decoy_count: int = 0
    #: False only for the §4.1 strawman hosting (fixed IV, no decoys).
    secure: bool = True
    #: Per-field encrypted occurrences (value, block id) in document order.
    #: Client-side knowledge retained to support the incremental-update
    #: extension (field-granular value-index rebuilds).
    occurrences: dict[str, list[tuple[str, int]]] = field(default_factory=dict)
    #: Scheme epoch: bumped on every mutation of the hosted state.  All
    #: derived caches — query plans, server fragments, client-decrypted
    #: blocks, structural-index interval arrays — are keyed or gated on
    #: it, so one integer compare invalidates every layer at once.
    epoch: int = 0
    #: High-water mark of hosted node ids: the largest id ever assigned in
    #: the hosted tree (elements, attributes and block placeholders).  All
    #: id allocation goes through :meth:`allocate_hosted_id`, so inserts
    #: cost O(1) instead of a full-tree walk per insert.  Deletes never
    #: lower the mark — ids are never reused, which also means a fragment
    #: path can never alias a node deleted earlier in the epoch.  ``None``
    #: (hostings loaded from pre-mark storage) triggers one lazy scan.
    max_hosted_id: int | None = None
    #: Lazily-built Merkle tree over ``block_tags`` (the freshness
    #: anchor).  All tag mutations must go through :meth:`set_block_tag`
    #: / :meth:`drop_block_tag` so the tree stays incremental; a keyset
    #: drift (legacy direct mutation) is healed by a rebuild in
    #: :meth:`state_root`.
    merkle: "BlockMerkleTree | None" = field(
        default=None, repr=False, compare=False
    )
    #: Serializes anchor reads (``state_root``) against anchor mutations
    #: (tag maintenance, epoch bumps).  :class:`BlockMerkleTree` is not
    #: thread-safe, and the serving layer seals envelopes (reading epoch
    #: + root) on the event-loop thread while update handlers mutate the
    #: tree on pool threads — without the lock a seal could observe a
    #: half-rebuilt tree and emit an anchor that verifies against
    #: nothing.  Reentrant so locked callers can compose these helpers.
    anchor_lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )
    #: Recent committed anchors, ``epoch → Merkle root``, recorded at
    #: every :meth:`anchor` read and :meth:`bump_epoch` commit.  This is
    #: what lets a verifier authenticate an envelope sealed at an anchor
    #: that was current *during a request's flight* but has since been
    #: superseded by a concurrent writer (bounded-staleness acceptance:
    #: see :meth:`root_at`).  Derived state — never persisted; a fresh
    #: process simply starts with an empty window.
    anchor_history: dict[int, bytes] = field(
        default_factory=dict, repr=False, compare=False
    )

    #: Bound on :attr:`anchor_history` (commits, not bytes — roots are
    #: 32 bytes each, so the window costs at most ~16 KiB).
    ANCHOR_HISTORY_LIMIT = 512

    def state_root(self) -> bytes:
        """Merkle root over the per-block tags: the freshness anchor.

        The client holds this root (it owns ``block_tags``); every wire
        envelope binds it together with :attr:`epoch`, so a replayed
        pre-update response can be detected even though its MAC is valid.
        """
        from repro.core.integrity import BlockMerkleTree

        with self.anchor_lock:
            if (
                self.merkle is None
                or self.merkle.leaf_count != len(self.block_tags)
            ):
                self.merkle = BlockMerkleTree(self.block_tags)
            return self.merkle.root()

    def anchor(self) -> tuple[int, bytes]:
        """One consistent ``(epoch, root)`` pair for sealing.

        Reading the two attributes separately can tear across a
        concurrent update (old epoch with new root or vice versa); every
        seal site should take the pair through here.
        """
        with self.anchor_lock:
            root = self.state_root()
            self._record_anchor(self.epoch, root)
            return self.epoch, root

    def _record_anchor(self, epoch: int, root: bytes) -> None:
        """Remember a committed anchor pair (caller holds the lock)."""
        self.anchor_history[epoch] = root
        while len(self.anchor_history) > self.ANCHOR_HISTORY_LIMIT:
            self.anchor_history.pop(next(iter(self.anchor_history)))

    def root_at(self, epoch: int) -> "bytes | None":
        """The authentic Merkle root recorded for ``epoch``, if still held.

        Returns the *live* root for the current epoch, a historical root
        from the bounded :attr:`anchor_history` window for a recent past
        epoch, and ``None`` for anything older (or never recorded) — the
        caller must then treat the envelope as unverifiable-stale.
        """
        with self.anchor_lock:
            if epoch == self.epoch:
                return self.state_root()
            return self.anchor_history.get(epoch)

    def set_block_tag(self, block_id: int, tag: bytes) -> None:
        """Install a block tag and incrementally maintain the Merkle tree."""
        with self.anchor_lock:
            self.block_tags[block_id] = tag
            if self.merkle is not None:
                self.merkle.set_leaf(block_id, tag)

    def drop_block_tag(self, block_id: int) -> None:
        """Remove a block tag (block deleted) and its Merkle leaf."""
        with self.anchor_lock:
            self.block_tags.pop(block_id, None)
            if self.merkle is not None:
                self.merkle.remove_leaf(block_id)

    def bump_epoch(self) -> None:
        """Advance the scheme epoch after a hosted-state mutation.

        Called by :mod:`repro.core.updates` once per applied update; the
        structural index's static caches are dropped eagerly, the
        epoch-keyed caches (plans, fragments, decrypted blocks) expire
        lazily on their next epoch check.
        """
        from repro.perf import counters

        with self.anchor_lock:
            self.epoch += 1
            self.structural_index.invalidate_caches()
            # Record the new commit's anchor immediately, so envelopes
            # sealed at this epoch stay verifiable even after further
            # concurrent commits advance the live anchor.
            self._record_anchor(self.epoch, self.state_root())
        counters.add("epoch_invalidations")

    def allocate_hosted_id(self) -> int:
        """Next fresh hosted node id (advances the high-water mark)."""
        if self.max_hosted_id is None:
            self.max_hosted_id = self._scan_max_hosted_id()
        self.max_hosted_id += 1
        return self.max_hosted_id

    def _scan_max_hosted_id(self) -> int:
        """Full-tree walk for the largest assigned id (legacy hostings).

        Runs at most once per loaded database — every allocation after
        the first maintains the mark incrementally.
        """
        best = 0
        for node in self.hosted_root.iter():
            best = max(best, node.node_id)
            if isinstance(node, Element):
                for attribute in node.attributes:
                    best = max(best, attribute.node_id)
        return best

    def hosted_size_bytes(self) -> int:
        """Size of the serialized hosted database, |E(D)|."""
        return len(serialize(self.hosted_root).encode("utf-8"))

    def block_count(self) -> int:
        return len(self.blocks)


def host_database(
    document: Document,
    scheme: EncryptionScheme,
    keyring: ClientKeyring,
    secure: bool = True,
) -> HostedDatabase:
    """Encrypt ``document`` under ``scheme`` and build all metadata.

    ``secure=False`` hosts the §4.1 *strawman*: no decoys and a fixed
    block IV, so equal plaintext subtrees produce equal ciphertexts.  It
    exists only so the attack experiments can demonstrate the
    frequency-based attack succeeding against careless encryption; never
    use it for real hosting.
    """
    assert_no_reserved_tags(document)
    document.renumber()

    # --- structural metadata on the original structure (pre-decoy) ---
    intervals = assign_intervals(document, keyring.dsi_weight_stream())
    block_ids = {
        root_id: index + 1
        for index, root_id in enumerate(sorted(scheme.block_root_ids))
    }
    structural_index = build_structural_index(
        document,
        intervals,
        scheme.block_root_ids,
        block_ids,
        keyring.tag_cipher.encrypt_tag,
    )

    # --- classify nodes and gather value occurrences ---
    owning_block = _owning_blocks(document, scheme.block_root_ids, block_ids)
    encrypted_tags: set[str] = set()
    plaintext_keys: set[str] = set()
    occurrences: dict[str, list[tuple[str, int]]] = {}
    for node in document.iter_with_attributes():
        key = _node_key(node)
        if key is None:
            continue
        block = owning_block.get(node.node_id)
        if block is None:
            plaintext_keys.add(key)
            continue
        encrypted_tags.add(key)
        value = node.text_value()
        if value is not None and (
            isinstance(node, Attribute) or node.is_leaf_element
        ):
            occurrences.setdefault(leaf_field_name(node), []).append(
                (value, block)
            )

    # --- OPESS value metadata ---
    field_plans: dict[str, FieldPlan] = {}
    field_tokens: dict[str, str] = {}
    for field_name, occurrence_list in sorted(occurrences.items()):
        histogram = Counter(value for value, _ in occurrence_list)
        field_plans[field_name] = build_field_plan(
            field_name,
            histogram,
            keyring.opess_stream(field_name),
            keyring.ope,
        )
        field_tokens[field_name] = keyring.tag_cipher.encrypt_tag(field_name)
    value_index = build_value_index(
        occurrences, field_plans, field_tokens, keyring.ope
    )

    # --- build the hosted tree ---
    hosted = document.clone()  # identical numbering after Document.__init__
    decoy_stream = keyring.decoy_stream()
    blocks: dict[int, bytes] = {}
    placeholders: dict[int, EncryptedBlockNode] = {}
    block_tags: dict[int, bytes] = {}
    hosted_root: Node = hosted.root
    decoy_count = 0
    for root_id in sorted(scheme.block_root_ids):
        block_id = block_ids[root_id]
        subtree = hosted.node_by_id(root_id)
        assert isinstance(subtree, Element)
        if secure:
            decoy_count += inject_decoys(subtree, decoy_stream)
        plaintext_xml = serialize(subtree).encode("utf-8")
        iv = keyring.block_iv(block_id) if secure else keyring.block_iv(0)
        payload = cbc_encrypt(keyring.block_cipher, iv, plaintext_xml)
        placeholder = EncryptedBlockNode(block_id, payload)
        blocks[block_id] = payload
        placeholders[block_id] = placeholder
        block_tags[block_id] = keyring.block_tag(block_id, payload)
        if subtree is hosted_root:
            hosted_root = placeholder
        else:
            subtree.replace_with(placeholder)
    hosted_id_count = _renumber_hosted(hosted_root)

    # --- attach server-visible plaintext info to index entries ---
    # hosted.node_by_id still resolves *original* ids: _renumber_hosted
    # rewrote the node_id fields but the Document's id map was built at
    # clone time, and plaintext nodes were never detached from it.
    for entry in structural_index.all_entries():
        if entry.block_id is not None:
            continue
        assert len(entry.member_ids) == 1  # plaintext entries never group
        hosted_node = hosted.node_by_id(entry.member_ids[0])
        entry.hosted_node = hosted_node
        entry.plaintext_value = hosted_node.text_value()

    return HostedDatabase(
        hosted_root=hosted_root,
        structural_index=structural_index,
        value_index=value_index,
        blocks=blocks,
        placeholders=placeholders,
        block_tags=block_tags,
        root_tag=document.root.tag,
        encrypted_tags=encrypted_tags,
        plaintext_keys=plaintext_keys,
        field_plans=field_plans,
        field_tokens=field_tokens,
        decoy_count=decoy_count,
        secure=secure,
        occurrences=occurrences,
        max_hosted_id=hosted_id_count - 1,
    )


def _owning_blocks(
    document: Document,
    block_root_ids: frozenset[int],
    block_ids: dict[int, int],
) -> dict[int, int]:
    owning: dict[int, int] = {}
    for root_id in block_root_ids:
        root = document.node_by_id(root_id)
        assert isinstance(root, Element)
        block = block_ids[root_id]
        for node in root.iter():
            owning[node.node_id] = block
            if isinstance(node, Element):
                for attribute in node.attributes:
                    owning[attribute.node_id] = block
    return owning


def _node_key(node: Node) -> str | None:
    """DSI-table key shape of a node: tag, ``@name``, or None for text."""
    if isinstance(node, Attribute):
        return f"@{node.name}"
    if isinstance(node, Element):
        return node.tag
    return None


def _renumber_hosted(root: Node) -> int:
    """Assign fresh document-order ids over the hosted tree.

    The hosted tree mixes elements, attributes and block placeholders; its
    ids are the stable ancestor identifiers the server puts in fragment
    paths (and the client uses to merge skeletons).  Returns the number of
    ids assigned, which seeds the hosted database's id high-water mark.
    """
    counter = 0
    stack: list[Node] = [root]
    while stack:
        node = stack.pop()
        node.node_id = counter
        counter += 1
        if isinstance(node, Element):
            for attribute in node.attributes:
                attribute.node_id = counter
                counter += 1
        stack.extend(reversed(node.children))
    return counter
