"""Crash-safety and corruption-detection tests for persisted hostings."""

import json
import os

import pytest

from repro.core.storage import (
    CrashInjected,
    StorageError,
    crash_points,
    load_system,
    save_system,
    set_crash_point,
)
from repro.core.system import SecureXMLSystem

MASTER = b"crash-test-master-key-32-bytes!!"
PROBE = "//patient[pname='Betty']/SSN"


@pytest.fixture(autouse=True)
def disarm_crash_hook():
    yield
    set_crash_point(None)


@pytest.fixture
def hosted_pair(tmp_path, healthcare_doc, healthcare_scs):
    """(v1 system, v2 system, v1 probe answer, v2 probe answer)."""
    v1 = SecureXMLSystem.host(
        healthcare_doc, healthcare_scs, scheme="opt", master_key=MASTER
    )
    v1_answer = v1.query(PROBE).values()
    seed_dir = str(tmp_path / "seed")
    save_system(v1, seed_dir)
    v2 = load_system(seed_dir, MASTER)
    v2.update_value(PROBE, "555555")
    v2_answer = v2.query(PROBE).values()
    assert v1_answer != v2_answer
    return v1, v2, v1_answer, v2_answer


class TestCrashSweep:
    def test_killed_save_never_corrupts_previous_hosting(
        self, tmp_path, hosted_pair
    ):
        """Kill the save at every protocol step: load must always succeed
        and always see a *consistent* hosting (entirely v1 or entirely v2,
        never a mix)."""
        v1, v2, v1_answer, v2_answer = hosted_pair
        for point in crash_points():
            directory = str(tmp_path / point.replace(":", "_"))
            save_system(v1, directory)  # the previous, intact hosting
            set_crash_point(point)
            with pytest.raises(CrashInjected):
                save_system(v2, directory)
            set_crash_point(None)
            loaded = load_system(directory, MASTER)
            answer = loaded.query(PROBE).values()
            assert answer in (v1_answer, v2_answer), point
            # Recovery must leave no staged litter behind.
            leftovers = [
                name for name in os.listdir(directory)
                if name.endswith(".new")
            ]
            assert leftovers == [], point

    def test_crash_before_commit_keeps_old_generation(
        self, tmp_path, hosted_pair
    ):
        v1, v2, v1_answer, _ = hosted_pair
        directory = str(tmp_path / "precommit")
        save_system(v1, directory)
        set_crash_point("stage:manifest.json")
        with pytest.raises(CrashInjected):
            save_system(v2, directory)
        set_crash_point(None)
        loaded = load_system(directory, MASTER)
        assert loaded.query(PROBE).values() == v1_answer

    def test_crash_after_staging_rolls_forward(self, tmp_path, hosted_pair):
        v1, v2, _, v2_answer = hosted_pair
        directory = str(tmp_path / "postcommit")
        save_system(v1, directory)
        set_crash_point("commit:hosted.xml")  # staged fully, published nothing
        with pytest.raises(CrashInjected):
            save_system(v2, directory)
        set_crash_point(None)
        loaded = load_system(directory, MASTER)
        assert loaded.query(PROBE).values() == v2_answer

    def test_clean_save_leaves_no_staging_files(self, tmp_path, hosted_pair):
        v1, _, _, _ = hosted_pair
        directory = str(tmp_path / "clean")
        save_system(v1, directory)
        assert sorted(os.listdir(directory)) == [
            "client_state.json", "columns.bin", "columns.json",
            "hosted.xml", "manifest.json", "server_meta.json",
        ]

    def test_column_manifest_has_crash_points(self):
        """The column store files ride the stage-then-commit protocol."""
        points = crash_points()
        for name in ("columns.json", "columns.bin"):
            assert f"stage:{name}" in points
            assert f"commit:{name}" in points

    def test_crash_at_column_manifest_stage_keeps_old_generation(
        self, tmp_path, hosted_pair
    ):
        v1, v2, v1_answer, _ = hosted_pair
        directory = str(tmp_path / "colstage")
        save_system(v1, directory)
        set_crash_point("stage:columns.json")
        with pytest.raises(CrashInjected):
            save_system(v2, directory)
        set_crash_point(None)
        loaded = load_system(directory, MASTER, backend="columnar")
        assert loaded.query(PROBE).values() == v1_answer


class TestCorruptionDetection:
    @pytest.fixture
    def saved(self, tmp_path, healthcare_doc, healthcare_scs):
        system = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="opt", master_key=MASTER
        )
        directory = str(tmp_path / "hosting")
        save_system(system, directory)
        return directory

    @pytest.mark.parametrize(
        "victim",
        [
            "hosted.xml",
            "server_meta.json",
            "client_state.json",
            "columns.json",
            "columns.bin",
        ],
    )
    def test_flipped_byte_names_the_bad_file(self, saved, victim):
        path = os.path.join(saved, victim)
        with open(path, "rb") as f:
            data = bytearray(f.read())
        data[len(data) // 2] ^= 0x01
        with open(path, "wb") as f:
            f.write(bytes(data))
        with pytest.raises(StorageError) as excinfo:
            load_system(saved, MASTER)
        assert victim in str(excinfo.value)

    @pytest.mark.parametrize(
        "victim",
        [
            "hosted.xml",
            "server_meta.json",
            "client_state.json",
            "columns.json",
            "columns.bin",
        ],
    )
    def test_missing_file_names_the_bad_file(self, saved, victim):
        os.remove(os.path.join(saved, victim))
        with pytest.raises(StorageError) as excinfo:
            load_system(saved, MASTER)
        assert victim in str(excinfo.value)

    def test_malformed_manifest_rejected(self, saved):
        path = os.path.join(saved, "manifest.json")
        with open(path, "w") as f:
            f.write('{"version": 2}')  # no "files" key
        with pytest.raises(StorageError, match="manifest"):
            load_system(saved, MASTER)

    def test_invalid_json_wrapped_without_manifest(self, saved):
        """The load-path JSON errors surface as StorageError + path even
        for a legacy hosting that has no manifest to fail first."""
        os.remove(os.path.join(saved, "manifest.json"))
        path = os.path.join(saved, "server_meta.json")
        with open(path, "w") as f:
            f.write("{not json")
        with pytest.raises(StorageError) as excinfo:
            load_system(saved, MASTER)
        assert "server_meta.json" in str(excinfo.value)
        assert "JSON" in str(excinfo.value)

    def test_missing_key_wrapped_without_manifest(self, saved):
        os.remove(os.path.join(saved, "manifest.json"))
        path = os.path.join(saved, "server_meta.json")
        with open(path) as f:
            meta = json.load(f)
        del meta["dsi"]
        with open(path, "w") as f:
            json.dump(meta, f)
        with pytest.raises(StorageError) as excinfo:
            load_system(saved, MASTER)
        assert "server_meta.json" in str(excinfo.value)

    def test_storage_error_is_a_value_error(self):
        assert issubclass(StorageError, ValueError)

    def test_stale_staged_files_are_discarded_on_load(self, saved):
        stale = os.path.join(saved, "hosted.xml.new")
        with open(stale, "w") as f:
            f.write("<garbage/>")
        system = load_system(saved, MASTER)
        assert not os.path.exists(stale)
        assert system.query("//SSN").canonical()


class TestFreshnessPersistence:
    """The client's freshness anchor (epoch + Merkle root) survives
    crashes atomically with the hosting it describes."""

    @pytest.mark.parametrize("backend", ["object", "columnar"])
    def test_epoch_and_root_roundtrip(self, tmp_path, hosted_pair, backend):
        _, v2, _, v2_answer = hosted_pair
        directory = str(tmp_path / f"anchor-{backend}")
        save_system(v2, directory)
        loaded = load_system(directory, MASTER, backend=backend)
        assert loaded.hosted.epoch == v2.hosted.epoch
        assert loaded.hosted.epoch > 0  # v2 is post-update
        assert loaded.hosted.state_root() == v2.hosted.state_root()
        assert loaded.query(PROBE).values() == v2_answer

    @pytest.mark.parametrize("backend", ["object", "columnar"])
    def test_crash_sweep_never_mixes_anchor_and_state(
        self, tmp_path, hosted_pair, backend
    ):
        """At every crash point the recovered hosting's (epoch, root)
        pair is exactly v1's or exactly v2's, and always the pair
        matching the answer it serves — a torn anchor would turn every
        later exchange into a false rollback alarm."""
        v1, v2, v1_answer, v2_answer = hosted_pair
        anchors = {
            tuple(v1_answer): (v1.hosted.epoch, v1.hosted.state_root()),
            tuple(v2_answer): (v2.hosted.epoch, v2.hosted.state_root()),
        }
        assert anchors[tuple(v1_answer)] != anchors[tuple(v2_answer)]
        for point in crash_points():
            directory = str(
                tmp_path / f"{backend}-{point.replace(':', '_')}"
            )
            save_system(v1, directory)
            set_crash_point(point)
            with pytest.raises(CrashInjected):
                save_system(v2, directory)
            set_crash_point(None)
            loaded = load_system(directory, MASTER, backend=backend)
            answer = loaded.query(PROBE).values()
            assert tuple(answer) in anchors, point
            assert (
                loaded.hosted.epoch, loaded.hosted.state_root()
            ) == anchors[tuple(answer)], point

    def test_tampered_root_is_rejected_at_load(self, tmp_path, hosted_pair):
        v1, _, _, _ = hosted_pair
        directory = str(tmp_path / "tamper")
        save_system(v1, directory)
        # Remove the manifest so the whole-file checksum gate cannot fire
        # first; the root check must stand on its own for legacy layouts.
        os.remove(os.path.join(directory, "manifest.json"))
        path = os.path.join(directory, "client_state.json")
        with open(path) as f:
            state = json.load(f)
        assert "state_root" in state and "epoch" in state
        state["state_root"] = "00" * 32
        with open(path, "w") as f:
            json.dump(state, f)
        with pytest.raises(StorageError) as excinfo:
            load_system(directory, MASTER)
        assert "client_state.json" in str(excinfo.value)
        assert "root mismatch" in str(excinfo.value)

    def test_legacy_state_without_anchor_still_loads(
        self, tmp_path, hosted_pair
    ):
        """Pre-freshness saves (no epoch/state_root keys) load at epoch 0
        with the root recomputed from the stored tags."""
        v1, _, v1_answer, _ = hosted_pair
        directory = str(tmp_path / "legacy")
        save_system(v1, directory)
        os.remove(os.path.join(directory, "manifest.json"))
        path = os.path.join(directory, "client_state.json")
        with open(path) as f:
            state = json.load(f)
        del state["state_root"]
        del state["epoch"]
        with open(path, "w") as f:
            json.dump(state, f)
        loaded = load_system(directory, MASTER)
        assert loaded.hosted.epoch == 0
        assert loaded.query(PROBE).values() == v1_answer


class TestCliDiagnostics:
    def test_corrupt_hosting_exits_nonzero_with_one_line(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        directory = str(tmp_path / "hosting")
        assert main(
            ["host", "--workload", "healthcare", "--save", directory]
        ) == 0
        capsys.readouterr()
        path = os.path.join(directory, "hosted.xml")
        with open(path, "rb") as f:
            data = bytearray(f.read())
        data[10] ^= 0xFF
        with open(path, "wb") as f:
            f.write(bytes(data))

        exit_code = main(["query", "--load", directory, "//SSN"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert captured.out == ""
        error_lines = captured.err.strip().splitlines()
        assert len(error_lines) == 1
        assert "hosted.xml" in error_lines[0]

    def test_missing_directory_exits_nonzero(self, tmp_path, capsys):
        from repro.cli import main

        missing = str(tmp_path / "nope")
        exit_code = main(["query", "--load", missing, "//SSN"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "nope" in captured.err
