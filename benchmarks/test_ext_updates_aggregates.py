"""Extension benchmarks: incremental updates and no-decryption aggregates.

Not a paper figure — these measure the two extensions this repo adds on
top of the paper (§8's future-work items): field-granular incremental
updates, and the §6.4 server-side MIN/MAX protocol compared against the
exact decrypt-and-fold path.
"""

from repro.bench.harness import format_table
from repro.core.system import SecureXMLSystem
from repro.workloads.nasa import build_nasa_database, nasa_constraints

from conftest import write_result


def test_ext_update_throughput(benchmark):
    import time

    def run():
        document = build_nasa_database(dataset_count=40, seed=6)
        system = SecureXMLSystem.host(
            document, nasa_constraints(), scheme="opt"
        )
        rehost_started = time.perf_counter()
        SecureXMLSystem.host(document, nasa_constraints(), scheme="opt")
        rehost_seconds = time.perf_counter() - rehost_started

        rows = []
        # Plaintext inserts (titles are unique per dataset).
        started = time.perf_counter()
        for index in range(10):
            system.insert_element(
                f"//dataset[title='{_title(document, index)}']",
                "note",
                f"note-{index}",
            )
        rows.append(["10 plaintext inserts",
                     time.perf_counter() - started])
        # Encrypted inserts (rebuild the 'last' field each time).
        started = time.perf_counter()
        for index in range(5):
            system.insert_element(
                f"//dataset[title='{_title(document, index)}']/distribution",
                "last",
                f"Newauthor{index}",
            )
        rows.append(["5 encrypted inserts (field rebuilds)",
                     time.perf_counter() - started])
        rows.append(["full re-host (the alternative)", rehost_seconds])
        # Queries stay exact-sane after the batch.
        assert system.query("//note").canonical()
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["operation", "seconds"],
        rows,
        "Extension — incremental update cost vs re-hosting (NASA, opt)",
    )
    write_result("ext_update_throughput", table)

    per_plain = rows[0][1] / 10
    rehost = rows[2][1]
    # A plaintext insert is far cheaper than a re-host.
    assert per_plain < rehost / 5


def _title(document, index):
    from repro.xpath.evaluator import evaluate

    return evaluate(document, "//title")[index].text_value()


def test_ext_aggregate_modes(benchmark):
    import time

    def run():
        document = build_nasa_database(dataset_count=40, seed=6)
        system = SecureXMLSystem.host(
            document, nasa_constraints(), scheme="opt"
        )
        rows = []
        for query in ("//last", "//author[age>40]/last"):
            started = time.perf_counter()
            exact = system.aggregate(query, "min", mode="exact")
            exact_seconds = time.perf_counter() - started
            started = time.perf_counter()
            server = system.aggregate(query, "min", mode="server")
            server_seconds = time.perf_counter() - started
            assert exact == server, query
            bytes_shipped = system.last_trace.transfer_bytes
            rows.append(
                [query, exact_seconds, server_seconds, bytes_shipped, 0]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["query (min)", "t_exact (s)", "t_server (s)",
         "bytes exact", "bytes server"],
        rows,
        "Extension — §6.4 MIN without decryption vs exact pipeline",
    )
    write_result("ext_aggregate_modes", table)

    # The server path ships no blocks at all.
    for _, _, _, _, server_bytes in rows:
        assert server_bytes == 0
