"""Tests for the workload generators and query classes."""

import pytest

from repro.workloads.healthcare import (
    EXAMPLE_QUERY,
    build_healthcare_database,
    healthcare_constraints,
)
from repro.workloads.nasa import build_nasa_database, nasa_constraints
from repro.workloads.queries import QueryWorkload
from repro.workloads.xmark import build_xmark_database, xmark_constraints
from repro.xmldb.serializer import serialize
from repro.xmldb.stats import depth, tag_histogram, value_frequencies
from repro.xpath.evaluator import evaluate


class TestHealthcare:
    def test_matches_figure_2(self):
        doc = build_healthcare_database()
        assert [n.text_value() for n in evaluate(doc, "//pname")] == [
            "Betty",
            "Matt",
        ]
        assert len(evaluate(doc, "//treat")) == 3
        assert len(evaluate(doc, "//policy#")) == 4
        coverages = [a.value for a in evaluate(doc, "//insurance/@coverage")]
        assert coverages == ["1000000", "10000"]

    def test_diarrhea_repeats(self):
        doc = build_healthcare_database()
        frequencies = value_frequencies(doc)["disease"]
        assert frequencies["diarrhea"] == 2
        assert frequencies["leukemia"] == 1

    def test_constraints_parse(self):
        constraints = healthcare_constraints()
        assert len(constraints) == 4
        assert sum(1 for c in constraints if c.is_association) == 3

    def test_example_query_answer(self):
        doc = build_healthcare_database()
        values = [n.text_value() for n in evaluate(doc, EXAMPLE_QUERY)]
        assert sorted(values) == ["276543", "763895"]


class TestGenerators:
    @pytest.mark.parametrize(
        "builder,count_arg",
        [(build_xmark_database, 20), (build_nasa_database, 15)],
    )
    def test_deterministic(self, builder, count_arg):
        assert serialize(builder(count_arg, seed=5)) == serialize(
            builder(count_arg, seed=5)
        )

    @pytest.mark.parametrize(
        "builder", [build_xmark_database, build_nasa_database]
    )
    def test_seed_changes_content(self, builder):
        assert serialize(builder(10, seed=1)) != serialize(builder(10, seed=2))

    def test_xmark_scales_with_person_count(self):
        small = build_xmark_database(10)
        large = build_xmark_database(40)
        assert large.size() > 3 * small.size()

    def test_xmark_has_constraint_graph_tags(self, xmark_doc):
        histogram = tag_histogram(xmark_doc)
        for tag in ("name", "emailaddress", "income", "creditcard",
                    "address", "profile", "age"):
            assert histogram[tag] > 0, tag

    def test_nasa_has_constraint_graph_tags(self, nasa_doc):
        histogram = tag_histogram(nasa_doc)
        for tag in ("initial", "last", "date", "publisher", "title", "city"):
            assert histogram[tag] > 0, tag

    def test_nasa_deeper_than_xmark(self, xmark_doc, nasa_doc):
        # The NASA data's author nesting is the deep part of the paper's
        # real dataset.
        assert depth(nasa_doc) >= 6
        assert depth(xmark_doc) >= 4

    def test_constraints_bind(self, xmark_doc, nasa_doc):
        for constraint in xmark_constraints():
            if constraint.is_association:
                assert constraint.endpoint_nodes(xmark_doc, 1)
                assert constraint.endpoint_nodes(xmark_doc, 2)
        for constraint in nasa_constraints():
            if constraint.is_association:
                assert constraint.endpoint_nodes(nasa_doc, 1)
                assert constraint.endpoint_nodes(nasa_doc, 2)

    def test_skewed_income_distribution(self, xmark_doc):
        frequencies = value_frequencies(xmark_doc)["income"]
        counts = sorted(frequencies.values(), reverse=True)
        assert counts[0] >= 2  # repeated salary bands for OPESS to flatten


class TestQueryWorkload:
    @pytest.fixture(scope="class")
    def workload(self, nasa_doc):
        return QueryWorkload(nasa_doc, seed=3, per_class=10)

    def test_three_classes_of_ten(self, workload):
        by_class = workload.by_class()
        assert set(by_class) == {"Qs", "Qm", "Ql"}
        assert all(len(queries) == 10 for queries in by_class.values())

    def test_deterministic(self, nasa_doc):
        first = QueryWorkload(nasa_doc, seed=3).by_class()
        second = QueryWorkload(nasa_doc, seed=3).by_class()
        assert first == second

    def test_qs_outputs_root_children(self, workload, nasa_doc):
        for query in workload.qs():
            results = evaluate(nasa_doc, query)
            assert results
            assert all(node.depth == 1 for node in results)

    def test_qm_outputs_mid_level(self, workload, nasa_doc):
        target = max(1, depth(nasa_doc) // 2)
        for query in workload.qm():
            for node in evaluate(nasa_doc, query):
                assert node.depth == target

    def test_ql_outputs_leaves(self, workload, nasa_doc):
        from repro.xmldb.node import Attribute

        for query in workload.ql():
            for node in evaluate(nasa_doc, query):
                assert isinstance(node, Attribute) or node.is_leaf_element

    def test_queries_parse_and_answer(self, workload, nasa_doc):
        for queries in workload.by_class().values():
            for query in queries:
                evaluate(nasa_doc, query)  # must not raise
