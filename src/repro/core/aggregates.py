"""Aggregate query evaluation (§5.2 / §6.4).

The paper's OPESS design deliberately trades aggregate power for security:

    "because of splitting, aggregate queries involving COUNT cannot be
    evaluated without decryption, although queries involving MAX/MIN can
    still be evaluated correctly without decryption."

Two evaluation modes are provided:

* **exact mode** — run the secure pipeline, fold the plaintext answers on
  the client.  Works for every function (min, max, count, sum, avg) and is
  always exact; COUNT and SUM necessarily go this way (splitting and
  scaling destroy cardinalities server-side).

* **server mode** (min/max only) — the server scans the B-tree value index
  restricted to the blocks matched by the structural join and returns the
  extreme *ciphertext*; the client inverts it through the OPE function and
  the field plan without decrypting any data block.  Because B-tree
  entries address encryption *blocks*, this is exact when each matched
  block contains only matched occurrences of the field (always true for
  per-node granularities like ``opt``/``app`` covers) and may otherwise
  include a value from an unmatched sibling inside a matched block — the
  same block-granularity caveat the paper's design carries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.dsi import IndexEntry
from repro.core.opess import FieldPlan
from repro.core.structural_join import match_pattern
from repro.core.translate import TranslatedQuery

AGGREGATE_FUNCTIONS = ("min", "max", "count", "sum", "avg")


@dataclass
class ServerAggregate:
    """The server's reply to a no-decryption MIN/MAX request."""

    #: extreme OPE ciphertext among encrypted matches (None if none)
    ciphertext: Optional[int]
    #: extreme plaintext value among plaintext matches (None if none)
    plaintext: Optional[str]
    #: how many index entries were scanned (for the trace)
    scanned_entries: int


def server_min_max(
    query: TranslatedQuery,
    structure,
    values,
    func: str,
) -> ServerAggregate:
    """Server side of the no-decryption MIN/MAX protocol.

    Runs the ordinary structural join, then folds over (a) the plaintext
    values of matched plaintext entries and (b) the value-index entries
    whose block is one of the matched encrypted blocks.  No block payload
    is touched.
    """
    if func not in ("min", "max"):
        raise ValueError("server aggregation supports only min/max")
    result = match_pattern(query, structure, values)
    entries = result.output_entries

    plaintext_best: Optional[str] = None
    blocks: set[int] = set()
    for entry in entries:
        if entry.block_id is not None:
            blocks.add(entry.block_id)
        elif entry.plaintext_value is not None:
            plaintext_best = _fold_plaintext(
                plaintext_best, entry.plaintext_value, func
            )

    ciphertext_best: Optional[int] = None
    scanned = 0
    for key in query.output.keys:
        tree = values.tree_for(key)
        if tree is None:
            continue
        for ciphertext, block_id in tree.items():
            scanned += 1
            if block_id not in blocks:
                continue
            if ciphertext_best is None:
                ciphertext_best = ciphertext
            elif func == "min":
                ciphertext_best = min(ciphertext_best, ciphertext)
            else:
                ciphertext_best = max(ciphertext_best, ciphertext)

    return ServerAggregate(
        ciphertext=ciphertext_best,
        plaintext=plaintext_best,
        scanned_entries=scanned,
    )


def _fold_plaintext(current: Optional[str], value: str, func: str) -> str:
    if current is None:
        return value
    left, right = _coerce(current), _coerce(value)
    if func == "min":
        return current if left <= right else value
    return current if left >= right else value


def _coerce(value: str):
    try:
        return (0, float(value))
    except ValueError:
        return (1, value)


def combine_min_max(
    server_reply: ServerAggregate,
    plan: Optional[FieldPlan],
    ope,
    func: str,
) -> Optional[str]:
    """Client side: invert the ciphertext and merge with the plaintext side.

    Inversion uses only the client's keys — ``ope.decrypt_float`` plus the
    field plan's position → value mapping — never a data block.
    """
    candidates: list[str] = []
    if server_reply.plaintext is not None:
        candidates.append(server_reply.plaintext)
    if server_reply.ciphertext is not None:
        if plan is None:
            raise ValueError(
                "server returned a ciphertext for a field with no plan"
            )
        position = ope.decrypt_float(server_reply.ciphertext)
        value = plan.value_at_position(position)
        if value is not None:
            candidates.append(value)
    if not candidates:
        return None
    best = candidates[0]
    for value in candidates[1:]:
        best = _fold_plaintext(best, value, func)
    return best


def fold_exact(values: list[str], func: str) -> Optional[float | int | str]:
    """Client-side exact aggregation over decrypted answer values."""
    if func not in AGGREGATE_FUNCTIONS:
        raise ValueError(
            f"unknown aggregate {func!r}; expected one of {AGGREGATE_FUNCTIONS}"
        )
    if func == "count":
        return len(values)
    if not values:
        return None
    if func in ("min", "max"):
        keyed = sorted(values, key=_coerce)
        return keyed[0] if func == "min" else keyed[-1]
    numbers = [float(v) for v in values]
    if func == "sum":
        return sum(numbers)
    return sum(numbers) / len(numbers)
