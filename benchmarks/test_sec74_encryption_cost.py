"""E4 — §7.4 (first part): encryption time and encrypted document size.

The paper observed, per scheme: *app* takes the longest to encrypt (it
encrypts the most elements), *sub* produces the largest encrypted document
(thousands of blocks each paying the per-block envelope), and *opt* is the
best on both axes.  This benchmark re-hosts both datasets under all four
schemes and reports time, size, block counts and scheme sizes.
"""

import time

import pytest

from repro.bench.harness import format_table
from repro.core.system import SecureXMLSystem
from repro.workloads.nasa import nasa_constraints
from repro.workloads.xmark import xmark_constraints

from conftest import SCHEMES, write_result


def _run(document, constraints):
    rows = []
    stats = {}
    for kind in SCHEMES:
        started = time.perf_counter()
        system = SecureXMLSystem.host(document, constraints, scheme=kind)
        elapsed = time.perf_counter() - started
        trace = system.hosting_trace
        stats[kind] = {
            "time": elapsed,
            "bytes": trace.hosted_bytes,
            "blocks": trace.block_count,
            "scheme_nodes": trace.scheme_size_nodes,
        }
        rows.append(
            [
                kind,
                elapsed,
                trace.hosted_bytes,
                trace.block_count,
                trace.scheme_size_nodes,
                trace.decoy_count,
            ]
        )
    return rows, stats


@pytest.mark.parametrize("dataset", ["xmark", "nasa"])
def test_encryption_cost(benchmark, dataset, xmark_doc, nasa_doc):
    document = xmark_doc if dataset == "xmark" else nasa_doc
    constraints = (
        xmark_constraints() if dataset == "xmark" else nasa_constraints()
    )
    rows, stats = benchmark.pedantic(
        _run, args=(document, constraints), rounds=1, iterations=1
    )
    table = format_table(
        ["scheme", "encrypt time (s)", "hosted bytes", "blocks",
         "|S| (nodes)", "decoys"],
        rows,
        f"§7.4 — encryption cost per scheme, {dataset} database",
    )
    write_result(f"sec74_encryption_cost_{dataset}", table)

    # Shape assertions from the paper's narrative:
    # opt encrypts no more nodes than app (exact vs approximate cover).
    assert stats["opt"]["scheme_nodes"] <= stats["app"]["scheme_nodes"]
    # sub's output exceeds opt's (bigger blocks + envelopes).
    assert stats["sub"]["bytes"] > stats["opt"]["bytes"]
    # top is one single block.
    assert stats["top"]["blocks"] == 1
    # Fine-grained schemes have many blocks.
    assert stats["opt"]["blocks"] > stats["sub"]["blocks"] > 1
