"""E-parallel — throughput benchmark for the parallel query engine.

Head-to-head on the XMark workload: the serial engine (``parallel=False``,
exactly the pre-parallel pipeline) against the parallel engine across a
worker sweep.  The headline number is **warm repeated-query throughput**
— the production shape the roadmap targets, a traffic stream where query
strings repeat — where the parallel engine's completed-exchange memo
serves clones without touching the wire while the serial engine re-runs
decrypt/assemble/evaluate per repeat.  Cold (first-contact) batches are
reported too; they are dominated by single-visit crypto either way, so
no speedup floor is asserted there.

Every measured pass is checked byte-identical against the serial
answers first — a throughput win that changed an answer would be a bug,
not a result.  Results land in ``benchmarks/results/`` (human-readable)
and machine-readable ``BENCH_parallel.json`` at the repository root.
"""

from __future__ import annotations

import gc
import json
import os
import time

import pytest

from repro.bench.harness import format_table, trimmed_mean
from repro.core.system import SecureXMLSystem
from repro.perf import counters
from repro.workloads.xmark import xmark_constraints
from repro.xpath.compiler import UnsupportedQuery

from conftest import BENCH_TRIALS, write_result

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_parallel.json")
MASTER_KEY = b"parallel-benchmark-master-key-01"

#: worker counts swept (0 = the serial engine, the baseline)
WORKER_SWEEP = (0, 1, 2, 4)

#: how many times each query repeats inside one warm batch
REPEATS = 4

_REPORT: dict[str, object] = {"trials": BENCH_TRIALS, "repeats": REPEATS}


def _write_report() -> None:
    with open(BENCH_JSON, "w", encoding="utf-8") as handle:
        json.dump(_REPORT, handle, indent=2, sort_keys=True)
        handle.write("\n")


@pytest.fixture(scope="module")
def parallel_queries(xmark_doc, xmark_queries):
    """Server-evaluable Qs+Qm queries, repeated into a traffic batch."""
    probe = SecureXMLSystem.host(
        xmark_doc, xmark_constraints(), scheme="opt", master_key=MASTER_KEY
    )
    unique = []
    for query_class in ("Qs", "Qm"):
        for query in xmark_queries[query_class]:
            try:
                probe.client.translate(query)
            except UnsupportedQuery:
                continue
            if query not in unique:
                unique.append(query)
    assert unique, "workload produced no server-evaluable queries"
    return unique * REPEATS


@pytest.fixture(scope="module")
def swept_systems(xmark_doc):
    """One hosted system per swept worker count, identical hosted bytes."""
    constraints = xmark_constraints()
    systems = {
        workers: SecureXMLSystem.host(
            xmark_doc,
            constraints,
            scheme="opt",
            master_key=MASTER_KEY,
            parallel=False if workers == 0 else workers,
        )
        for workers in WORKER_SWEEP
    }
    yield systems
    for system in systems.values():
        system.close()


def test_parallel_warm_throughput(swept_systems, parallel_queries):
    """4 workers deliver ≥2× the serial warm-query throughput on XMark."""
    queries = parallel_queries
    reference: list[list[str]] | None = None
    sweep: list[dict[str, float]] = []

    for workers, system in swept_systems.items():
        # Cold pass: first execution ever on this system (also warms it).
        started = time.perf_counter()
        answers = system.execute_many(queries)
        cold_s = time.perf_counter() - started

        canonical = [answer.canonical() for answer in answers]
        if reference is None:
            reference = canonical
        else:
            assert canonical == reference, (
                f"{workers}-worker answers diverged from serial"
            )

        # timeit's protocol: answers are node graphs with parent/child
        # reference cycles, so every discarded batch otherwise triggers
        # cyclic-collector traversals mid-sample that swamp the signal.
        gc.collect()
        gc.disable()
        try:
            warm_samples = []
            for _ in range(BENCH_TRIALS):
                started = time.perf_counter()
                warm_answers = system.execute_many(queries)
                warm_samples.append(time.perf_counter() - started)
        finally:
            gc.enable()
        warm_s = trimmed_mean(warm_samples)
        assert [a.canonical() for a in warm_answers] == reference

        sweep.append(
            {
                "workers": workers,
                "cold_batch_s": cold_s,
                "warm_batch_s": warm_s,
                "warm_queries_per_s": len(queries) / warm_s,
            }
        )

    serial = sweep[0]
    for point in sweep:
        point["warm_speedup_vs_serial"] = (
            serial["warm_batch_s"] / point["warm_batch_s"]
        )

    rows = [
        [
            ("serial" if p["workers"] == 0 else f"{p['workers']} workers"),
            p["cold_batch_s"],
            p["warm_batch_s"],
            p["warm_queries_per_s"],
            p["warm_speedup_vs_serial"],
        ]
        for p in sweep
    ]
    write_result(
        "parallel_warm_throughput",
        format_table(
            ["engine", "t_cold", "t_warm", "q/s warm", "speedup"],
            rows,
            f"Parallel engine — batch of {len(queries)} XMark queries "
            f"({len(queries) // REPEATS} unique × {REPEATS})",
        ),
    )
    _REPORT["warm_throughput"] = {
        "query_count": len(queries),
        "unique_queries": len(queries) // REPEATS,
        "sweep": sweep,
    }
    _write_report()

    at_four = next(p for p in sweep if p["workers"] == 4)
    assert at_four["warm_speedup_vs_serial"] >= 2.0, (
        f"warm speedup {at_four['warm_speedup_vs_serial']:.2f}x below the "
        "2x acceptance floor"
    )


def test_parallel_engine_exercises_new_machinery(
    swept_systems, parallel_queries
):
    """The sweep actually drove the streaming/memo paths (not a no-op)."""
    system = swept_systems[4]
    before = counters.snapshot()
    system.execute_many(parallel_queries)
    delta = counters.delta_since(before)
    assert delta["answer_cache_hits"] > 0, "memo never served a repeat"
    _REPORT["machinery"] = {
        "warm_batch_delta": {k: v for k, v in delta.items() if v},
    }
    _write_report()
