"""Integrity envelope for wire payloads (untrusted-server hardening).

The paper's threat model (§3.3) assumes an honest-but-curious server; this
module moves the reproduction toward an *actively adversarial* one: every
payload crossing the client↔server channel is wrapped in a keyed
HMAC-SHA256 envelope, and every encryption block carries an
encrypt-then-MAC tag (see :meth:`repro.crypto.keyring.ClientKeyring
.block_tag`).  Tampering — whether injected by the fault channel or by the
server — becomes *detection* (a typed error the retry layer can handle),
never a silent wrong answer.

Envelope layout::

    b"rxi1" | tag (32 bytes, HMAC-SHA256 over the payload) | payload

Two MAC keys exist (both derived from the master key, see
``ClientKeyring.session_keys``): the *request* key authenticates
client→server messages, the *response* key server→client messages.  They
model an authenticated session, so they defend the wire; the per-block
tags use a third, client-only key and defend against the server itself.

Freshness envelope (layout 2)
-----------------------------

A MAC proves a payload was not *tampered with*, not that it is *fresh*:
a rollback attacker can replay an earlier validly-MACed response.  The
``rxi2`` layout binds two pieces of client-anchored state into the tag::

    b"rxi2" | epoch (8 bytes BE) | root (32 bytes) | tag (32) | payload

where *epoch* is the monotonic commit counter (``HostedDatabase.epoch``)
and *root* the Merkle root over the per-block integrity tags
(:class:`BlockMerkleTree`).  The tag is HMAC-SHA256 over
``magic | epoch | root | payload``, so an attacker cannot re-stamp an
old payload with a newer header.  Verification order is strict: MAC
first, and only then is the (now authenticated) header compared against
the verifier's own state — an *older* epoch raises
:class:`RollbackDetectedError`, any other divergence raises
:class:`StaleStateError`.  Both derive from :class:`IntegrityError`, so
the existing retry/failover machinery treats stale answers exactly like
tampered ones: typed error, never a silent stale answer.
"""

from __future__ import annotations

import bisect
import hashlib
import hmac as _compare

from repro.crypto.hmac import hmac_sha256_fast

#: Envelope magic: "repro xml integrity, layout 1".
MAGIC = b"rxi1"
TAG_BYTES = 32
OVERHEAD = len(MAGIC) + TAG_BYTES

#: Freshness envelope magic: "repro xml integrity, layout 2".
MAGIC_FRESH = b"rxi2"
EPOCH_BYTES = 8
ROOT_BYTES = 32
#: magic | epoch | root | tag
FRESH_HEADER = len(MAGIC_FRESH) + EPOCH_BYTES + ROOT_BYTES
FRESH_OVERHEAD = FRESH_HEADER + TAG_BYTES


class IntegrityError(Exception):
    """Base class for integrity-envelope verification failures."""


class TamperedResponseError(IntegrityError):
    """A server→client payload failed MAC verification (or a block tag)."""


class TamperedRequestError(IntegrityError):
    """A client→server payload failed MAC verification at the server."""


class FreshnessError(IntegrityError):
    """A validly-MACed payload does not derive from the freshest state.

    Carries the authenticated ``observed_epoch`` from the envelope and
    the verifier's ``expected_epoch`` so callers (and error messages)
    can report the exact lag.  Subclassing :class:`IntegrityError` makes
    freshness failures retryable under the existing ``RetryPolicy`` and
    replica-failover budgets with no changes to those layers.
    """

    def __init__(
        self, message: str, *, observed_epoch: int = -1,
        expected_epoch: int = -1,
    ) -> None:
        super().__init__(message)
        self.observed_epoch = observed_epoch
        self.expected_epoch = expected_epoch

    @property
    def epoch_lag(self) -> int:
        """How many commits behind the observed state is (0 if unknown)."""
        if self.observed_epoch < 0 or self.expected_epoch < 0:
            return 0
        return max(0, self.expected_epoch - self.observed_epoch)


class RollbackDetectedError(FreshnessError):
    """The envelope authenticates an *earlier* commit epoch: a replayed
    (rolled-back) snapshot from before one or more committed updates."""


class StaleStateError(FreshnessError):
    """The envelope's authenticated state diverges from the verifier's
    (future epoch, or a Merkle root that does not match this epoch)."""


class ReplayedCommandError(IntegrityError):
    """A validly-MACed command blob was already applied: a captured replay.

    Raised by the serving layer's command dedup: within a widened
    freshness window a sealed mutating command stays MAC- and
    freshness-valid for several commits, so the server remembers the
    tags of recently applied commands and rejects a second arrival of
    the same blob.  Deliberately *not* a :class:`FreshnessError` — the
    client re-seal loops retry those, and a replay must surface as a
    detection, never be absorbed by a retry."""


def seal(key: bytes, payload: bytes) -> bytes:
    """Wrap ``payload`` in the integrity envelope under ``key``."""
    return MAGIC + hmac_sha256_fast(key, payload) + payload


def unseal(
    key: bytes,
    blob: bytes,
    error: type[IntegrityError] = TamperedResponseError,
) -> bytes:
    """Verify and strip the envelope; raises ``error`` on any mismatch.

    Every failure mode — truncation below the header, a wrong magic, a
    flipped bit anywhere in tag or payload — raises the same typed error,
    so callers cannot be tricked into partial parses.
    """
    if len(blob) < OVERHEAD or blob[: len(MAGIC)] != MAGIC:
        raise error("envelope header missing or truncated")
    tag = blob[len(MAGIC) : OVERHEAD]
    payload = blob[OVERHEAD:]
    if not _compare.compare_digest(tag, hmac_sha256_fast(key, payload)):
        raise error("envelope MAC mismatch")
    return payload


def seal_fresh(key: bytes, payload: bytes, epoch: int, root: bytes) -> bytes:
    """Wrap ``payload`` in the freshness envelope under ``key``.

    ``epoch`` and ``root`` are bound into the MAC, so the header cannot
    be swapped without the session key.
    """
    if epoch < 0:
        raise ValueError("epoch must be non-negative")
    if len(root) != ROOT_BYTES:
        raise ValueError(f"root must be {ROOT_BYTES} bytes")
    header = MAGIC_FRESH + epoch.to_bytes(EPOCH_BYTES, "big") + root
    tag = hmac_sha256_fast(key, header + payload)
    return header + tag + payload


def unseal_fresh(
    key: bytes,
    blob: bytes,
    expected_epoch: int,
    expected_root: bytes,
    error: type[IntegrityError] = TamperedResponseError,
) -> bytes:
    """Verify MAC *and* freshness; return the payload.

    Raises ``error`` (a tamper error) for anything that fails MAC
    verification, so an attacker cannot forge a "stale" signal.  Only
    once the header is authenticated is it compared against the
    verifier's ``(expected_epoch, expected_root)``:

    - an older epoch → :class:`RollbackDetectedError` (replayed
      pre-update snapshot);
    - a newer epoch, or a root mismatch at the same epoch →
      :class:`StaleStateError` (the verifier itself cannot attest this
      state is current).
    """
    if len(blob) < FRESH_OVERHEAD or blob[: len(MAGIC_FRESH)] != MAGIC_FRESH:
        raise error("freshness envelope header missing or truncated")
    header = blob[:FRESH_HEADER]
    tag = blob[FRESH_HEADER:FRESH_OVERHEAD]
    payload = blob[FRESH_OVERHEAD:]
    if not _compare.compare_digest(
        tag, hmac_sha256_fast(key, header + payload)
    ):
        raise error("freshness envelope MAC mismatch")
    observed_epoch = int.from_bytes(
        blob[len(MAGIC_FRESH) : len(MAGIC_FRESH) + EPOCH_BYTES], "big"
    )
    observed_root = blob[len(MAGIC_FRESH) + EPOCH_BYTES : FRESH_HEADER]
    if observed_epoch < expected_epoch:
        raise RollbackDetectedError(
            f"rollback detected: envelope attests epoch {observed_epoch}, "
            f"freshest committed epoch is {expected_epoch}",
            observed_epoch=observed_epoch, expected_epoch=expected_epoch,
        )
    if observed_epoch > expected_epoch:
        raise StaleStateError(
            f"stale verifier state: envelope attests epoch "
            f"{observed_epoch}, verifier holds epoch {expected_epoch}",
            observed_epoch=observed_epoch, expected_epoch=expected_epoch,
        )
    if not _compare.compare_digest(observed_root, expected_root):
        raise StaleStateError(
            f"state-root mismatch at epoch {observed_epoch}: the envelope "
            "derives from a different committed state",
            observed_epoch=observed_epoch, expected_epoch=expected_epoch,
        )
    return payload


def peek_epoch(blob: bytes) -> int | None:
    """Read the (unauthenticated) epoch field of an ``rxi2`` blob.

    For lag accounting only — never trust this for verification; use
    :func:`unseal_fresh`, which authenticates the header first.
    """
    if len(blob) < FRESH_OVERHEAD or blob[: len(MAGIC_FRESH)] != MAGIC_FRESH:
        return None
    return int.from_bytes(
        blob[len(MAGIC_FRESH) : len(MAGIC_FRESH) + EPOCH_BYTES], "big"
    )


def envelope_payload(blob: bytes) -> bytes:
    """Strip the (rxi1 or rxi2) envelope header without verifying.

    Used by the rollback attacker in :mod:`repro.netsim.faults` to match
    *logical* requests across epochs: the sealed request bytes change
    whenever the epoch moves, but the query payload underneath does not.
    """
    if len(blob) >= FRESH_OVERHEAD and blob[: len(MAGIC_FRESH)] == MAGIC_FRESH:
        return blob[FRESH_OVERHEAD:]
    if len(blob) >= OVERHEAD and blob[: len(MAGIC)] == MAGIC:
        return blob[OVERHEAD:]
    return blob


class BlockMerkleTree:
    """Merkle tree over the per-block integrity tags.

    Leaves are the ``(block_id, tag)`` pairs of
    ``HostedDatabase.block_tags`` in sorted ``block_id`` order; the leaf
    hash domain-separates id from tag (``sha256(b"leaf" | id | tag)``),
    interior nodes are ``sha256(b"node" | left | right)``, odd nodes are
    promoted.  The empty tree has a fixed sentinel root, so a hosting
    with no encrypted blocks still anchors a well-defined state.

    The common update path (``update_value`` re-tags an existing block)
    is a true O(log n) incremental path update; inserting or deleting a
    block shifts sorted positions, so those rebuild the level arrays
    (O(n) hashing, amortized by the epoch-cached root on both ends).
    """

    _EMPTY_ROOT = hashlib.sha256(b"repro-merkle-empty").digest()

    def __init__(self, tags: dict[int, bytes] | None = None) -> None:
        self._tags: dict[int, bytes] = dict(tags or {})
        self._ids: list[int] = []
        self._levels: list[list[bytes]] = []
        self._dirty = True

    @property
    def leaf_count(self) -> int:
        return len(self._tags)

    @staticmethod
    def _leaf_hash(block_id: int, tag: bytes) -> bytes:
        return hashlib.sha256(
            b"leaf" + block_id.to_bytes(8, "big", signed=True) + tag
        ).digest()

    def _rebuild(self) -> None:
        self._ids = sorted(self._tags)
        level = [self._leaf_hash(i, self._tags[i]) for i in self._ids]
        self._levels = [level]
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(
                    hashlib.sha256(
                        b"node" + level[i] + level[i + 1]
                    ).digest()
                )
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
            self._levels.append(level)
        self._dirty = False

    def set_leaf(self, block_id: int, tag: bytes) -> None:
        """Insert or update one leaf; re-tagging is an O(log n) path."""
        if block_id in self._tags and not self._dirty:
            self._tags[block_id] = tag
            index = bisect.bisect_left(self._ids, block_id)
            self._levels[0][index] = self._leaf_hash(block_id, tag)
            for depth in range(len(self._levels) - 1):
                level = self._levels[depth]
                parent = index // 2
                left = level[2 * parent]
                if 2 * parent + 1 < len(level):
                    digest = hashlib.sha256(
                        b"node" + left + level[2 * parent + 1]
                    ).digest()
                else:
                    digest = left
                self._levels[depth + 1][parent] = digest
                index = parent
            return
        self._tags[block_id] = tag
        self._dirty = True

    def remove_leaf(self, block_id: int) -> None:
        if self._tags.pop(block_id, None) is not None:
            self._dirty = True

    def root(self) -> bytes:
        if self._dirty:
            self._rebuild()
        if not self._levels or not self._levels[-1]:
            return self._EMPTY_ROOT
        return self._levels[-1][0]
