"""Axis-complete query workload: every XPath axis over real tag paths.

The §7.1 classes (:mod:`repro.workloads.queries`) only exercise the
downward fragment the paper's translator supports.  This generator
covers the full axis engine: for each of the thirteen axes it derives
query shapes from relations that actually hold in the document (sibling
tag pairs in document order, parent/child tag pairs, element tags with
attributes), so most queries have non-empty answers — an axis join that
returns nothing exercises very little.

Determinism matters twice over: the differential sweep replays the same
queries across backends/engines/cluster shapes, and the leakage tier
asserts trace determinism per query.  Everything is derived from the
document plus a seeded :class:`~repro.crypto.prf.DeterministicRandom`.
"""

from __future__ import annotations

from collections import defaultdict

from repro.crypto.prf import DeterministicRandom
from repro.xmldb.node import Document, Element

#: Axes the generator emits query shapes for — all thirteen.
ALL_AXES = (
    "child",
    "descendant",
    "descendant-or-self",
    "self",
    "attribute",
    "parent",
    "ancestor",
    "ancestor-or-self",
    "following-sibling",
    "preceding-sibling",
    "following",
    "preceding",
    "namespace",
)


class AxisWorkload:
    """Deterministic per-axis query sets for a document."""

    def __init__(
        self, document: Document, seed: int = 7, per_axis: int = 3
    ) -> None:
        self._document = document
        self._rng = DeterministicRandom(
            seed.to_bytes(8, "big").rjust(16, b"\x00"), "axes"
        )
        self._per_axis = per_axis
        self._root_tag = document.root.tag
        tags: set[str] = set()
        child_pairs: set[tuple[str, str]] = set()
        sibling_pairs: set[tuple[str, str]] = set()
        attr_names: dict[str, set[str]] = defaultdict(set)
        for element in document.elements():
            tags.add(element.tag)
            child_tags = [
                child.tag
                for child in element.children
                if isinstance(child, Element)
            ]
            for tag in child_tags:
                child_pairs.add((element.tag, tag))
            # Ordered sibling tag pairs: (before, after) in document
            # order under one parent — the population for both sibling
            # axes (and a biased-to-nonempty one for following/preceding).
            for i, before in enumerate(child_tags):
                for after in child_tags[i + 1 :]:
                    if before != after:
                        sibling_pairs.add((before, after))
            for attribute in element.attributes:
                attr_names[element.tag].add(attribute.name)
        self._tags = sorted(tags)
        self._child_pairs = sorted(child_pairs)
        self._sibling_pairs = sorted(sibling_pairs)
        self._attr_names = {
            tag: sorted(names) for tag, names in sorted(attr_names.items())
        }

    # ------------------------------------------------------------------
    # Per-axis shapes
    # ------------------------------------------------------------------
    def by_axis(self) -> dict[str, list[str]]:
        """Query sets keyed by axis name, plus a ``positional`` set."""
        out: dict[str, list[str]] = {}
        for axis in ALL_AXES:
            out[axis] = self._emit(axis)
        out["positional"] = self._emit_positional()
        return out

    def queries(self) -> list[str]:
        """The flat deduplicated workload, generation order preserved."""
        seen: set[str] = set()
        flat: list[str] = []
        for batch in self.by_axis().values():
            for query in batch:
                if query not in seen:
                    seen.add(query)
                    flat.append(query)
        return flat

    def _emit(self, axis: str) -> list[str]:
        queries: list[str] = []
        for _ in range(self._per_axis):
            query = self._render(axis)
            if query is not None:
                queries.append(query)
        return queries

    def _render(self, axis: str) -> "str | None":
        rng = self._rng
        if axis == "child":
            parent, child = rng.choice(self._child_pairs)
            return f"//{parent}/{child}"
        if axis == "descendant":
            return f"//{rng.choice(self._tags)}"
        if axis == "descendant-or-self":
            _, tag = rng.choice(self._child_pairs)
            return f"//{tag}/descendant-or-self::{tag}"
        if axis == "self":
            tag = rng.choice(self._tags)
            return f"//{tag}/self::{tag}"
        if axis == "attribute":
            if not self._attr_names:
                return None
            tag = rng.choice(sorted(self._attr_names))
            name = rng.choice(self._attr_names[tag])
            return f"//{tag}/@{name}"
        if axis == "parent":
            parent, child = rng.choice(self._child_pairs)
            # Alternate the .. abbreviation with the explicit axis.
            if rng.randint(0, 1):
                return f"//{child}/.."
            return f"//{child}/parent::{parent}"
        if axis == "ancestor":
            parent, child = rng.choice(self._child_pairs)
            return f"//{child}/ancestor::{parent}"
        if axis == "ancestor-or-self":
            _, child = rng.choice(self._child_pairs)
            return f"//{child}/ancestor-or-self::{child}"
        if axis == "following-sibling":
            before, after = rng.choice(self._sibling_pairs)
            return f"//{before}/following-sibling::{after}"
        if axis == "preceding-sibling":
            before, after = rng.choice(self._sibling_pairs)
            return f"//{after}/preceding-sibling::{before}"
        if axis == "following":
            before, after = rng.choice(self._sibling_pairs)
            return f"//{before}/following::{after}"
        if axis == "preceding":
            before, after = rng.choice(self._sibling_pairs)
            return f"//{after}/preceding::{before}"
        if axis == "namespace":
            # The data model carries no namespace nodes: always-empty,
            # but the plan must stay typed (residual), never naive.
            return f"//{rng.choice(self._tags)}/namespace::*"
        raise ValueError(f"unknown axis {axis!r}")

    def _emit_positional(self) -> list[str]:
        """Positional predicates: ``[n]``, ``[last()]``, ``position()``."""
        queries: list[str] = []
        for _ in range(self._per_axis):
            parent, child = self._rng.choice(self._child_pairs)
            form = self._rng.randint(0, 2)
            if form == 0:
                queries.append(f"//{parent}/{child}[1]")
            elif form == 1:
                queries.append(f"//{parent}/{child}[last()]")
            else:
                queries.append(f"//{child}[position()={self._rng.randint(1, 2)}]")
        return queries
