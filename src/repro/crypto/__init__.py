"""From-scratch cryptographic primitives used by the reproduction.

The paper needs four cryptographic contracts, all implemented here without
external crypto dependencies:

* a collision-resistant hash / PRF for key derivation and deterministic
  randomness — :mod:`repro.crypto.sha256` (FIPS 180-4) and
  :mod:`repro.crypto.hmac` (RFC 2104), cross-checked against the standard
  library in the test suite;
* a semantically secure block cipher for encryption blocks —
  :mod:`repro.crypto.aes` (FIPS-197 AES-128) with CBC/CTR modes and PKCS#7
  padding in :mod:`repro.crypto.modes`;
* the Vernam (one-time pad) cipher for tag names in the DSI index table and
  translated queries (§5.1.1, §6.1) — :mod:`repro.crypto.vernam`;
* a keyed, strictly monotone order-preserving encryption function as the
  ``enc`` used by OPESS (§5.2.1) — :mod:`repro.crypto.ope`.

:mod:`repro.crypto.keyring` holds the client's key hierarchy and derives all
of the above from a single master secret.
"""

from repro.crypto.sha256 import sha256
from repro.crypto.hmac import hmac_sha256
from repro.crypto.prf import PRF, DeterministicRandom
from repro.crypto.aes import AES128
from repro.crypto.modes import (
    cbc_decrypt,
    cbc_encrypt,
    ctr_transform,
    pkcs7_pad,
    pkcs7_unpad,
)
from repro.crypto.vernam import VernamCipher, DeterministicTagCipher
from repro.crypto.ope import OrderPreservingEncryption
from repro.crypto.keyring import ClientKeyring

__all__ = [
    "sha256",
    "hmac_sha256",
    "PRF",
    "DeterministicRandom",
    "AES128",
    "cbc_encrypt",
    "cbc_decrypt",
    "ctr_transform",
    "pkcs7_pad",
    "pkcs7_unpad",
    "VernamCipher",
    "DeterministicTagCipher",
    "OrderPreservingEncryption",
    "ClientKeyring",
]
