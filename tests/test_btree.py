"""Unit and property tests for the B-tree value-index substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.btree import BTree


class TestBasics:
    def test_empty_tree(self):
        tree = BTree()
        assert len(tree) == 0
        assert tree.search(1) == []
        assert 1 not in tree
        assert list(tree.items()) == []

    def test_insert_and_search(self):
        tree = BTree(min_degree=2)
        tree.insert(5, "a")
        tree.insert(3, "b")
        tree.insert(7, "c")
        assert tree.search(3) == ["b"]
        assert 5 in tree
        assert tree.search(4) == []

    def test_duplicates_accumulate(self):
        tree = BTree(min_degree=2)
        for index in range(4):
            tree.insert(9, f"p{index}")
        assert tree.search(9) == ["p0", "p1", "p2", "p3"]
        assert len(tree) == 4
        assert tree.distinct_keys == 1

    def test_min_degree_validated(self):
        with pytest.raises(ValueError):
            BTree(min_degree=1)

    def test_min_max(self):
        tree = BTree(min_degree=2)
        for key in (9, 2, 14, 7):
            tree.insert(key, None)
        assert tree.min_key() == 2
        assert tree.max_key() == 14

    def test_min_max_empty_rejected(self):
        with pytest.raises(KeyError):
            BTree().min_key()
        with pytest.raises(KeyError):
            BTree().max_key()

    def test_splits_maintain_height_balance(self):
        tree = BTree(min_degree=2)
        for key in range(100):
            tree.insert(key, key)
        tree.check_invariants()
        assert tree.height() >= 3  # forced splits happened

    def test_node_count_grows(self):
        tree = BTree(min_degree=2)
        for key in range(50):
            tree.insert(key, key)
        assert tree.node_count() > 1


class TestRangeScan:
    @pytest.fixture
    def tree(self):
        tree = BTree(min_degree=3)
        for key in range(0, 100, 2):  # even keys only
            tree.insert(key, f"v{key}")
        return tree

    def test_inclusive_bounds(self, tree):
        keys = [k for k, _ in tree.range_scan(10, 20)]
        assert keys == [10, 12, 14, 16, 18, 20]

    def test_open_low(self, tree):
        keys = [k for k, _ in tree.range_scan(None, 6)]
        assert keys == [0, 2, 4, 6]

    def test_open_high(self, tree):
        keys = [k for k, _ in tree.range_scan(94, None)]
        assert keys == [94, 96, 98]

    def test_full_scan_sorted(self, tree):
        keys = [k for k, _ in tree.range_scan()]
        assert keys == sorted(keys) == list(range(0, 100, 2))

    def test_empty_range(self, tree):
        assert list(tree.range_scan(11, 11)) == []
        assert list(tree.range_scan(200, 300)) == []

    def test_duplicates_in_range(self):
        tree = BTree(min_degree=2)
        tree.insert(5, "x")
        tree.insert(5, "y")
        assert list(tree.range_scan(5, 5)) == [(5, "x"), (5, "y")]

    def test_keys_iterator_distinct(self, tree):
        tree.insert(10, "dup")
        assert list(tree.keys()) == list(range(0, 100, 2))


class TestProperties:
    @given(
        st.lists(
            st.tuples(st.integers(-1000, 1000), st.integers(0, 5)),
            max_size=300,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_reference_model(self, entries):
        """B-tree behaves exactly like a sorted multimap."""
        tree = BTree(min_degree=2)
        reference: dict[int, list[int]] = {}
        for key, payload in entries:
            tree.insert(key, payload)
            reference.setdefault(key, []).append(payload)

        tree.check_invariants()
        assert len(tree) == sum(len(v) for v in reference.values())
        assert tree.distinct_keys == len(reference)
        expected = [
            (key, payload)
            for key in sorted(reference)
            for payload in reference[key]
        ]
        assert list(tree.items()) == expected

    @given(
        st.lists(st.integers(0, 200), min_size=1, max_size=200),
        st.integers(0, 200),
        st.integers(0, 200),
    )
    @settings(max_examples=40, deadline=None)
    def test_range_scan_matches_filter(self, keys, low, high):
        low, high = min(low, high), max(low, high)
        tree = BTree(min_degree=3)
        for key in keys:
            tree.insert(key, key)
        got = [k for k, _ in tree.range_scan(low, high)]
        expected = sorted(k for k in keys if low <= k <= high)
        assert got == expected

    @given(st.integers(2, 6), st.lists(st.integers(0, 10_000), max_size=500))
    @settings(max_examples=25, deadline=None)
    def test_invariants_for_any_degree(self, degree, keys):
        tree = BTree(min_degree=degree)
        for key in keys:
            tree.insert(key, None)
        tree.check_invariants()
