#!/usr/bin/env python3
"""Healthcare audit: what does the untrusted server actually learn?

Hosts the Figure 2 database and audits the server-visible state against
the Example 3.1 security constraints:

* shows the DSI index table rows (tags vs Vernam tokens, grouped
  intervals) and the encryption block table, mirroring Figure 4;
* enumerates the captured queries of every SC and confirms none of their
  answers are readable from the hosted tree;
* computes the Theorem 4.1 / 5.1 / 5.2 candidate counts for this exact
  hosting, i.e. how many plaintext databases are consistent with what the
  server stores.

Run:  python examples/healthcare_audit.py
"""

from collections import Counter

from repro import SecureXMLSystem
from repro.security.counting import (
    database_candidates,
    structural_candidates,
    value_index_candidates,
)
from repro.workloads.healthcare import (
    build_healthcare_database,
    healthcare_constraints,
)
from repro.xmldb.serializer import serialize
from repro.xmldb.stats import value_frequencies


def main() -> None:
    document = build_healthcare_database()
    constraints = healthcare_constraints()
    system = SecureXMLSystem.host(document, constraints, scheme="opt")
    hosted = system.hosted

    print("=== DSI index table (server metadata, cf. Figure 4b) ===")
    for key, entries in sorted(hosted.structural_index.table.items()):
        intervals = ", ".join(str(e.interval) for e in entries)
        print(f"  {key:<14} {intervals}")

    print("\n=== Encryption block table (cf. Figure 4a) ===")
    for block_id, interval in sorted(
        hosted.structural_index.block_table.items()
    ):
        print(f"  block {block_id}: representative {interval}")

    print("\n=== Captured queries per security constraint ===")
    for constraint in constraints:
        captured = constraint.captured_queries(document)
        print(f"  {constraint}:")
        for query in captured:
            print(f"    {query}")

    hosted_xml = serialize(hosted.hosted_root)
    leaked = [
        value
        for field, plan in hosted.field_plans.items()
        for value in plan.ordered_values
        if f">{value}<" in hosted_xml
    ]
    print(f"\nSensitive values readable from hosted tree: {leaked or 'none'}")

    print("\n=== Candidate-database counts for this hosting ===")
    frequencies = value_frequencies(document)
    for field in sorted(hosted.field_plans):
        histogram: Counter = frequencies[field]
        count = database_candidates(list(histogram.values()))
        print(f"  Thm 4.1, field {field:<10}: {count:,} candidates")

    profile = []
    for block_id in sorted(hosted.structural_index.block_table):
        members = sum(
            len(e.member_ids)
            for e in hosted.structural_index.all_entries()
            if e.block_id == block_id
        )
        intervals = sum(
            1
            for e in hosted.structural_index.all_entries()
            if e.block_id == block_id
        )
        profile.append((members, intervals))
    print(
        f"  Thm 5.1, structural index: "
        f"{structural_candidates(profile):,} candidates over "
        f"{len(profile)} blocks"
    )
    for field, plan in sorted(hosted.field_plans.items()):
        k = len(plan.ordered_values)
        n = sum(len(chunks) for chunks in plan.chunk_plan.values())
        print(
            f"  Thm 5.2, field {field:<10}: "
            f"C({n - 1},{k - 1}) = {value_index_candidates(n, k):,}"
        )

    print("\nOK: the server stores the data but can answer queries without"
          " learning any SC-protected fact.")


if __name__ == "__main__":
    main()
