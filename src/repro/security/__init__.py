"""Security analysis: the paper's attack model and theorem machinery.

* :mod:`repro.security.attacks` — frequency-based and size-based attack
  simulators (§3.3), used to demonstrate that naive per-leaf encryption is
  crackable while the decoy/OPESS constructions are not (§4.1, §5.2).
* :mod:`repro.security.indistinguishability` — the Definition 3.1 checker.
* :mod:`repro.security.counting` — exact candidate-database counts behind
  Theorems 4.1, 5.1 and 5.2 (big-integer arithmetic).
* :mod:`repro.security.belief` — the attacker-belief tracker of
  Definition 3.5 / Theorem 6.1.
"""

from repro.security.attacks import FrequencyAttack, SizeAttack
from repro.security.counting import (
    database_candidates,
    structural_candidates,
    value_index_candidates,
)
from repro.security.belief import BeliefTracker

__all__ = [
    "FrequencyAttack",
    "SizeAttack",
    "database_candidates",
    "structural_candidates",
    "value_index_candidates",
    "BeliefTracker",
]
