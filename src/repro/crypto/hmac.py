"""HMAC-SHA256 per RFC 2104, over our from-scratch SHA-256.

Used as the keyed PRF underlying key derivation, the deterministic tag
cipher's keystream, and the order-preserving encryption function's gap
generator.  Cross-checked against the standard library ``hmac`` module in
the test suite.
"""

from __future__ import annotations

from repro.crypto.sha256 import sha256

_BLOCK_SIZE = 64  # SHA-256 block size in bytes


def hmac_sha256(key: bytes, message: bytes) -> bytes:
    """Compute HMAC-SHA256(key, message) (32 bytes)."""
    if not isinstance(key, (bytes, bytearray)):
        raise TypeError("hmac key must be bytes")
    if not isinstance(message, (bytes, bytearray)):
        raise TypeError("hmac message must be bytes")

    key = bytes(key)
    if len(key) > _BLOCK_SIZE:
        key = sha256(key)
    key = key.ljust(_BLOCK_SIZE, b"\x00")

    inner_pad = bytes(byte ^ 0x36 for byte in key)
    outer_pad = bytes(byte ^ 0x5C for byte in key)
    return sha256(outer_pad + sha256(inner_pad + bytes(message)))


def derive_key(master: bytes, label: str, *context: str) -> bytes:
    """Derive a 32-byte subkey from a master secret.

    A simple HKDF-expand-style derivation: the label and context strings are
    length-prefixed so distinct derivations can never collide
    (``derive_key(k, "a", "bc") != derive_key(k, "ab", "c")``).
    """
    material = _length_prefixed(label.encode("utf-8"))
    for item in context:
        material += _length_prefixed(item.encode("utf-8"))
    return hmac_sha256(master, material)


def _length_prefixed(data: bytes) -> bytes:
    return len(data).to_bytes(4, "big") + data
