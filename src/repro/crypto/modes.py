"""Block cipher modes of operation and PKCS#7 padding.

Encryption blocks (serialized subtrees) are encrypted with AES-128-CBC and a
deterministic per-block IV derived from the block id — the hosted database
must be reproducible from the client keyring, and CBC with distinct IVs keeps
equal plaintext subtrees from producing equal ciphertexts (the same goal the
paper's decoys serve at the value level, here at the byte level).  CTR mode
is provided for keystream-style uses.

The XOR plumbing is word-wise: blocks are combined as 128-bit integers via
``int.from_bytes`` rather than per-byte generator expressions, and the
chaining XOR of CBC decryption (plus the keystream XOR of CTR) is applied
to the whole message in a single big-integer operation — CBC decryption
and CTR have no sequential data dependency, only CBC *encryption* does.
"""

from __future__ import annotations

from repro.crypto.aes import AES128
from repro.perf import counters

BLOCK = AES128.BLOCK_SIZE


def pkcs7_pad(data: bytes, block_size: int = BLOCK) -> bytes:
    """Append PKCS#7 padding (always at least one byte)."""
    if not 0 < block_size < 256:
        raise ValueError("block size must be in (0, 256)")
    pad_length = block_size - (len(data) % block_size)
    return data + bytes([pad_length]) * pad_length


def pkcs7_unpad(data: bytes, block_size: int = BLOCK) -> bytes:
    """Strip and validate PKCS#7 padding."""
    if not data or len(data) % block_size != 0:
        raise ValueError("invalid padded data length")
    pad_length = data[-1]
    if not 0 < pad_length <= block_size:
        raise ValueError("invalid padding byte")
    if data[-pad_length:] != bytes([pad_length]) * pad_length:
        raise ValueError("corrupt padding")
    return data[:-pad_length]


def _xor_bytes(left: bytes, right: bytes) -> bytes:
    """XOR two equal-length byte strings as one big-integer operation."""
    length = len(left)
    return (
        int.from_bytes(left, "big") ^ int.from_bytes(right, "big")
    ).to_bytes(length, "big")


def cbc_encrypt(cipher: AES128, iv: bytes, plaintext: bytes) -> bytes:
    """CBC-encrypt ``plaintext`` (padded internally with PKCS#7)."""
    if len(iv) != BLOCK:
        raise ValueError("IV must be one cipher block")
    padded = pkcs7_pad(plaintext)
    counters.add("blocks_encrypted", len(padded) // BLOCK)
    encrypt_block = cipher.encrypt_block
    previous = int.from_bytes(iv, "big")
    out = bytearray()
    for offset in range(0, len(padded), BLOCK):
        block = int.from_bytes(padded[offset : offset + BLOCK], "big")
        encrypted = encrypt_block((block ^ previous).to_bytes(BLOCK, "big"))
        out += encrypted
        previous = int.from_bytes(encrypted, "big")
    return bytes(out)


def cbc_decrypt(cipher: AES128, iv: bytes, ciphertext: bytes) -> bytes:
    """CBC-decrypt and remove PKCS#7 padding."""
    if len(iv) != BLOCK:
        raise ValueError("IV must be one cipher block")
    if len(ciphertext) % BLOCK != 0:
        raise ValueError("ciphertext length must be a multiple of the block size")
    counters.add("blocks_decrypted", len(ciphertext) // BLOCK)
    decrypt_block = cipher.decrypt_block
    decrypted = b"".join(
        decrypt_block(ciphertext[offset : offset + BLOCK])
        for offset in range(0, len(ciphertext), BLOCK)
    )
    # Each plaintext block is decrypted-block XOR previous ciphertext
    # block (IV for the first) — independent per block, so one whole-
    # message XOR replaces the per-block chaining loop.
    chain = iv + ciphertext[:-BLOCK]
    return pkcs7_unpad(_xor_bytes(decrypted, chain))


def ctr_transform(cipher: AES128, nonce: bytes, data: bytes) -> bytes:
    """CTR-mode keystream XOR (encryption and decryption are the same op)."""
    if len(nonce) != 8:
        raise ValueError("CTR nonce must be 8 bytes")
    if not data:
        return b""
    encrypt_block = cipher.encrypt_block
    block_count = (len(data) + BLOCK - 1) // BLOCK
    keystream = b"".join(
        encrypt_block(nonce + counter.to_bytes(8, "big"))
        for counter in range(block_count)
    )
    return _xor_bytes(data, keystream[: len(data)])
