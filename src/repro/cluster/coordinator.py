"""Scatter–gather query execution across a sharded, replicated cluster.

The coordinator is *client-side* machinery: it holds one
:class:`~repro.cluster.replication.ReplicaSet` per shard (each replica a
:class:`~repro.cluster.shard.ShardServer` behind its own sealed channel)
and runs every query as

1. **seal** — the client seals the translated query once; the identical
   request bytes go to every shard, so each shard's wire cache keys on
   the same blob a monolithic server would see;
2. **scatter** — a failover exchange against every shard's replica set
   (sequentially in-process; the modelled cost model treats the shards
   as concurrent, see :attr:`QueryTrace.cluster_makespan_s`);
3. **gather** — the partial responses are merged: fragments deduplicated
   by their ``root_id`` tag and sorted by it, which reproduces the
   monolithic fragment order *exactly* (the monolithic server sorts
   fragment roots by hosted node id), candidate counts taken from the
   freshest shard, block counts summed.

Because every shard runs the identical structural join and the owned
fragment roots partition the monolithic root list, the merged response —
and therefore the final answer — is byte-identical to the single-server
path at any (N, R), including under faults as long as one replica per
needed shard survives.

Updates route *through* the coordinator: :meth:`invalidate_entry` bumps
the per-shard epoch of exactly the shards whose groups the change can
reach (the affected entry's interval overlap plus every ancestor's
group), so an untouched shard keeps its warm caches across the update.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any

from repro.core.dsi import IndexEntry
from repro.core.encryptor import HostedDatabase
from repro.core.server import ServerResponse
from repro.netsim.channel import Channel
from repro.netsim.faults import FaultPolicy, FaultyChannel
from repro.perf import counters

from repro.cluster.placement import (
    ClusterConfig,
    PlacementMap,
    build_placement,
)
from repro.cluster.replication import Replica, ReplicaSet, ShardStats
from repro.cluster.shard import ShardServer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.client import Client
    from repro.core.leakage import LeakageContext
    from repro.core.system import QueryTrace, RetryPolicy
    from repro.crypto.keyring import ClientKeyring
    from repro.obs import Observability


class ShardEpochs:
    """Update-serial stamps deciding which shard's counts are fresh.

    Every routed update increments the serial and stamps the shards it
    bumped.  Only a shard stamped with the *current* serial is guaranteed
    to have flushed its caches after the latest update, so the gather
    takes candidate counts from the lowest-numbered such shard (all
    shards compute the identical full join, so any fresh shard's counts
    equal the monolithic server's).
    """

    def __init__(self, shard_count: int) -> None:
        self.serial = 0
        self.stamps = [0] * shard_count

    def bump(self, shard_ids: list[int]) -> None:
        self.serial += 1
        for shard_id in shard_ids:
            self.stamps[shard_id] = self.serial

    def freshest_shard(self) -> int:
        for shard_id, stamp in enumerate(self.stamps):
            if stamp == self.serial:
                return shard_id
        return 0  # unreachable: a bump always stamps at least one shard


def merge_partials(
    partials: list[tuple[int, ServerResponse]], fresh_shard: int
) -> ServerResponse:
    """Combine per-shard partial responses into the monolithic one.

    Fragment dedup keys on ``root_id``: ownership is a partition so
    duplicates cannot normally occur, but a replica served from a
    stale-but-safe cache may overlap a freshly computed partial after
    an update; first-seen wins (the fragments are identical by the
    staleness-safety argument in :mod:`repro.cluster.shard`).
    Candidate counts come from ``fresh_shard`` — the lowest-numbered
    shard stamped by the latest routed update (every shard computes the
    identical full join, so any fresh shard's counts equal the
    monolithic server's).

    Module-level (not a coordinator method) because the serving
    gateway gathers the same partials server-side, and the
    byte-identity guarantee rests on both paths merging through the
    exact same code.
    """
    by_root: dict[int, Any] = {}
    blocks = 0
    candidate_counts: dict[str, int] = {}
    for shard_id, partial in partials:
        blocks += partial.blocks_shipped
        if shard_id == fresh_shard:
            candidate_counts = dict(partial.candidate_counts)
        for fragment in partial.fragments:
            key = (
                fragment.root_id
                if fragment.root_id is not None
                else -1 - len(by_root)  # untagged: keep, never collide
            )
            if key not in by_root:
                by_root[key] = fragment
    fragments = [by_root[key] for key in sorted(by_root)]
    return ServerResponse(
        fragments=fragments,
        blocks_shipped=blocks,
        candidate_counts=candidate_counts,
    )


class ClusterCoordinator:
    """Client-side fan-out over the shard replica sets."""

    def __init__(
        self,
        hosted: HostedDatabase,
        placement: PlacementMap,
        replica_sets: list[ReplicaSet],
        obs: "Observability",
    ) -> None:
        self.hosted = hosted
        self.placement = placement
        self.replica_sets = replica_sets
        self._obs = obs
        self.epochs = ShardEpochs(len(replica_sets))
        #: Access-pattern leakage context shared with every shard
        #: replica; ``None`` keeps the fixed scatter order.
        self.leakage: "LeakageContext | None" = None

    def attach_leakage(self, context: "LeakageContext") -> None:
        """Join the cluster to a system-wide leakage context.

        Every replica of shard N records under the ``shard<N>`` observer
        (the trace stream is per shard, not per replica — the attacker
        model is a compromised shard, and failover must not fork the
        decoy stream), and the coordinator's scatter order goes through
        :meth:`scatter_order`.
        """
        self.leakage = context
        for replica_set in self.replica_sets:
            for replica in replica_set.replicas:
                replica.server.attach_leakage(
                    context, observer=f"shard{replica_set.shard_id}"
                )

    def scatter_order(self) -> "list[ReplicaSet]":
        """Replica sets in the order this scatter should visit them.

        Fixed (shard-id) order without a shuffling policy; otherwise a
        seeded permutation per scatter.  The serving gateway fans out
        through this same helper, so both scatter paths draw from the
        one ``"scatter"`` stream.  Gather keys fragments by ``root_id``
        and sorts, so visit order never changes the merged answer.
        """
        if self.leakage is None:
            return list(self.replica_sets)
        return self.leakage.scatter_order(self.replica_sets)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        hosted: HostedDatabase,
        keyring: "ClientKeyring",
        config: ClusterConfig,
        retry_policy: "RetryPolicy",
        obs: "Observability",
        pool: Any = None,
        enable_cache: bool = True,
        min_shard: int = 64,
        channel_template: Channel | None = None,
        faults: "FaultPolicy | Any | None" = None,
        backend: "str | None" = None,
    ) -> "ClusterCoordinator":
        """Stand up N×R shard servers with their per-replica channels.

        ``channel_template`` supplies the bandwidth/latency every replica
        channel models (defaults match :class:`Channel`).  ``faults`` is
        either one :class:`FaultPolicy` applied to every replica channel
        or a callable ``(shard_id, replica_id) -> FaultPolicy | None``,
        which is how the chaos tests give a shard one lossy and one clean
        replica.  ``backend`` is the join representation every shard
        server evaluates over; placement reads its cutpoints from the
        columnar planes when it names the columnar backend.
        """
        placement = build_placement(hosted, config, backend=backend)
        session_keys = keyring.session_keys()
        bandwidth = (
            channel_template.bandwidth_bits_per_second
            if channel_template is not None
            else Channel.bandwidth_bits_per_second
        )
        latency = (
            channel_template.latency_seconds
            if channel_template is not None
            else Channel.latency_seconds
        )
        replica_sets = []
        for shard_id in range(config.shards):
            replicas = []
            for replica_id in range(config.replicas):
                policy = faults(shard_id, replica_id) if callable(faults) else faults
                if policy is not None:
                    channel: Channel = FaultyChannel(
                        bandwidth_bits_per_second=bandwidth,
                        latency_seconds=latency,
                        policy=policy,
                    )
                else:
                    channel = Channel(
                        bandwidth_bits_per_second=bandwidth,
                        latency_seconds=latency,
                    )
                channel.obs = obs
                server = ShardServer(
                    hosted,
                    placement,
                    shard_id,
                    session_keys=session_keys,
                    pool=pool,
                    enable_cache=enable_cache,
                    min_shard=min_shard,
                    obs=obs,
                    backend=backend,
                )
                replicas.append(Replica(replica_id, server, channel))
            replica_sets.append(
                ReplicaSet(shard_id, replicas, retry_policy, obs)
            )
        return cls(hosted, placement, replica_sets, obs)

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    def scatter_gather(
        self,
        client: "Client",
        xpath: str,
        translated: Any,
        trace: "QueryTrace",
        rng: random.Random,
    ) -> ServerResponse:
        """Run one translated query across the cluster.

        Raises :class:`~repro.cluster.replication.ClusterDegradedError`
        (a typed :class:`QueryFailedError`) if any shard loses all its
        replicas — a partial answer is never returned.
        """
        tracer = self._obs.tracer
        counters.add("cluster_scatters")
        with tracer.span("seal"):
            request = client.seal_request(translated, cache_key=xpath)

        partials: list[tuple[int, ServerResponse]] = []
        makespan = 0.0
        with tracer.span(
            "scatter", shards=len(self.replica_sets)
        ) as scatter_span:
            for replica_set in self.scatter_order():
                # check_freshness runs inside the failover loop so a
                # rollback is pinned on the replica that served it (and
                # that replica is demoted/resynced); open_response then
                # re-verifies authoritatively on the returned blob.
                sealed, elapsed = replica_set.exchange(
                    request, trace, rng, verify=client.check_freshness
                )
                with tracer.span("verify", shard=replica_set.shard_id):
                    partial = client.open_response(sealed)
                partials.append((replica_set.shard_id, partial))
                replica_set.stats.fragments_returned += len(partial.fragments)
                replica_set.stats.blocks_shipped += partial.blocks_shipped
                makespan = max(makespan, elapsed)
        scatter_s = scatter_span.finish()

        with tracer.span("gather") as gather_span:
            response = self._merge(partials)
        gather_s = gather_span.finish()

        if self._obs.enabled:
            self._obs.metrics.observe("cluster_scatter_seconds", scatter_s)
            self._obs.metrics.observe("cluster_gather_seconds", gather_s)
        trace.cluster_shards = len(self.replica_sets)
        # Gather (a pure in-memory merge) happens after the slowest shard;
        # the modelled concurrent makespan is max(shard) + gather.
        trace.cluster_makespan_s += makespan + gather_s
        trace.candidate_counts = response.candidate_counts
        return response

    def naive_exchange(
        self, client: "Client", xpath: str, trace: "QueryTrace", rng: random.Random
    ) -> ServerResponse:
        """The naive ship-everything path against the cluster.

        The naive protocol has no sharded form — it ships the whole
        document by definition — so the exchange goes only to the shard
        owning the document root (its replica set still provides
        failover); the other shards are not contacted.
        """
        tracer = self._obs.tracer
        with tracer.span("seal"):
            request = client.seal_naive_request(xpath)
        root_set = next(
            (rs for rs in self.replica_sets if rs.owns_root()),
            self.replica_sets[0],
        )
        with tracer.span("scatter", naive=True, shards=1):
            sealed, elapsed = root_set.exchange(
                request, trace, rng, naive=True,
                verify=client.check_freshness,
            )
            with tracer.span("verify", shard=root_set.shard_id):
                response = client.open_response(sealed)
        root_set.stats.fragments_returned += len(response.fragments)
        root_set.stats.blocks_shipped += response.blocks_shipped
        trace.cluster_shards = len(self.replica_sets)
        trace.cluster_makespan_s += elapsed
        return response

    def _merge(
        self, partials: list[tuple[int, ServerResponse]]
    ) -> ServerResponse:
        """Gather step: delegate to the shared :func:`merge_partials`."""
        return merge_partials(partials, self.epochs.freshest_shard())

    # ------------------------------------------------------------------
    # Update routing
    # ------------------------------------------------------------------
    def invalidate_entry(self, entry: IndexEntry) -> None:
        """Bump exactly the shards a change at ``entry`` can reach.

        The affected set is the owners of every group overlapping the
        entry's interval (covers the entry, its whole subtree, and any
        gap-drawn insert inside it — laminarity keeps descendants inside
        the parent interval) plus the owner of each ancestor entry's
        group (a fragment root containing the change is the entry or an
        ancestor; no other entry can contain it).

        Axis engine note: reverse/order/sibling edges let a change here
        flip the *selection* of roots owned by shards far outside this
        set — but selection is never cached per shard.  The per-shard
        epoch guards only fragment *content* (a fragment's bytes depend
        on its subtree and ancestor path alone, both inside this set),
        while everything selection-dependent — the sealed wire/stream
        caches and the derived join inputs — tracks the *global* commit
        epoch, which every update moves (see
        :meth:`ShardServer._check_epoch <repro.cluster.shard.ShardServer._check_epoch>`).
        Widening the bump to axis reach would re-flush warm fragment
        caches across the whole parent span for no soundness gain.
        """
        affected = self.placement.shards_overlapping(
            entry.interval.low, entry.interval.high
        )
        ancestor = entry.parent
        while ancestor is not None:
            affected.add(self.placement.shard_of_low(ancestor.interval.low))
            ancestor = ancestor.parent
        ordered = sorted(affected)
        self.epochs.bump(ordered)
        for shard_id in ordered:
            self.replica_sets[shard_id].bump_epoch()

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------
    def flush_caches(self) -> None:
        for replica_set in self.replica_sets:
            replica_set.flush_caches()

    def close(self) -> None:
        """Shut down every distinct worker pool exactly once (idempotent).

        Shard servers typically share the owning system's pool; dedup by
        identity keeps a shared pool from being closed N×R times and
        makes a second ``close()`` a no-op on top of the pools' own
        idempotent close.
        """
        seen: set[int] = set()
        for replica_set in self.replica_sets:
            for replica in replica_set.replicas:
                pool = replica.server._pool
                if pool is not None and id(pool) not in seen:
                    seen.add(id(pool))
                    pool.close()

    def shard_stats(self) -> list[ShardStats]:
        return [replica_set.stats for replica_set in self.replica_sets]

    @property
    def config(self) -> ClusterConfig:
        return self.placement.config
