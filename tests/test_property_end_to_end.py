"""Property-based end-to-end test: Q(D) == secure pipeline on random inputs.

Hypothesis generates random documents over a small tag vocabulary (so tags
repeat across depths and values repeat across leaves — the hard cases for
grouping and OPESS), random constraint sets over that vocabulary and random
queries; the pipeline must return exactly the plaintext answer every time,
under every scheme granularity.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.client import canonical_node
from repro.core.constraints import SecurityConstraint
from repro.core.system import SecureXMLSystem
from repro.xmldb.builder import TreeBuilder
from repro.xmldb.node import Document
from repro.xpath.evaluator import evaluate

_CONTAINER_TAGS = ["rec", "grp", "box"]
_LEAF_TAGS = ["alpha", "beta", "gamma"]
_VALUES = ["v1", "v2", "v3", "10", "25", "300"]


@st.composite
def documents(draw) -> Document:
    builder = TreeBuilder("root")
    record_count = draw(st.integers(min_value=1, max_value=5))
    for _ in range(record_count):
        tag = draw(st.sampled_from(_CONTAINER_TAGS))
        with builder.element(tag):
            leaf_count = draw(st.integers(min_value=1, max_value=3))
            for _ in range(leaf_count):
                builder.leaf(
                    draw(st.sampled_from(_LEAF_TAGS)),
                    draw(st.sampled_from(_VALUES)),
                )
            if draw(st.booleans()):
                with builder.element(draw(st.sampled_from(_CONTAINER_TAGS))):
                    builder.leaf(
                        draw(st.sampled_from(_LEAF_TAGS)),
                        draw(st.sampled_from(_VALUES)),
                    )
    return builder.document()


@st.composite
def constraint_sets(draw) -> list[SecurityConstraint]:
    constraints = []
    if draw(st.booleans()):
        tag = draw(st.sampled_from(_CONTAINER_TAGS))
        constraints.append(SecurityConstraint.parse(f"//{tag}"))
    pair_count = draw(st.integers(min_value=0, max_value=2))
    for _ in range(pair_count):
        context = draw(st.sampled_from(_CONTAINER_TAGS))
        left = draw(st.sampled_from(_LEAF_TAGS))
        right = draw(st.sampled_from([t for t in _LEAF_TAGS if t != left]))
        constraints.append(
            SecurityConstraint.parse(f"//{context}:(//{left}, //{right})")
        )
    return constraints


@st.composite
def queries(draw) -> str:
    kind = draw(st.integers(min_value=0, max_value=5))
    container = draw(st.sampled_from(_CONTAINER_TAGS))
    leaf = draw(st.sampled_from(_LEAF_TAGS))
    value = draw(st.sampled_from(_VALUES))
    if kind == 0:
        return f"//{leaf}"
    if kind == 1:
        return f"/root/{container}/{leaf}"
    if kind == 2:
        return f"//{container}[{leaf}='{value}']"
    if kind == 3:
        return f"//{container}//{leaf}"
    if kind == 4:
        return f"//{container}[.//{leaf}='{value}']//{leaf}"
    return f"//{leaf}[.='{value}']"


def truth(document, query):
    return sorted(canonical_node(n) for n in evaluate(document, query))


class TestRandomizedExactness:
    @given(
        documents(),
        constraint_sets(),
        st.lists(queries(), min_size=1, max_size=3),
        st.sampled_from(["opt", "top"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_pipeline_matches_oracle(
        self, document, constraints, query_list, scheme
    ):
        system = SecureXMLSystem.host(document, constraints, scheme=scheme)
        for query in query_list:
            assert system.query(query).canonical() == truth(document, query)

    @given(documents(), constraint_sets())
    @settings(max_examples=15, deadline=None)
    def test_captured_queries_protected(self, document, constraints):
        """Enforcement invariant: every covered SC endpoint is encrypted."""
        system = SecureXMLSystem.host(document, constraints, scheme="opt")
        hosted = system.hosted
        for constraint in constraints:
            if not constraint.is_association:
                for node in constraint.context_nodes(document):
                    assert node.tag in hosted.encrypted_tags
            else:
                endpoints = {
                    constraint.endpoint_field(1),
                    constraint.endpoint_field(2),
                }
                # At least one endpoint's bound values live in blocks (it
                # may be absent from the document entirely).
                covered = endpoints & system.scheme.covered_fields
                bound = any(
                    constraint.endpoint_nodes(document, which)
                    for which in (1, 2)
                )
                if bound:
                    assert covered

    @given(documents(), st.sampled_from(["opt", "app", "sub", "top"]))
    @settings(max_examples=15, deadline=None)
    def test_hosting_deterministic(self, document, scheme):
        from repro.xmldb.serializer import serialize

        constraints = [
            SecurityConstraint.parse("//rec:(//alpha, //beta)")
        ]
        first = SecureXMLSystem.host(document, constraints, scheme=scheme)
        second = SecureXMLSystem.host(document, constraints, scheme=scheme)
        assert serialize(first.hosted.hosted_root) == serialize(
            second.hosted.hosted_root
        )
