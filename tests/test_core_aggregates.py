"""Tests for aggregate evaluation (§6.4): exact mode and server MIN/MAX."""

import pytest

from repro.core.aggregates import fold_exact
from repro.core.system import SecureXMLSystem
from repro.xpath.evaluator import evaluate


class TestFoldExact:
    def test_count(self):
        assert fold_exact(["a", "b", "b"], "count") == 3
        assert fold_exact([], "count") == 0

    def test_min_max_numeric(self):
        values = ["30", "4", "100"]
        assert fold_exact(values, "min") == "4"      # numeric, not lexicographic
        assert fold_exact(values, "max") == "100"

    def test_min_max_strings(self):
        values = ["pear", "apple"]
        assert fold_exact(values, "min") == "apple"
        assert fold_exact(values, "max") == "pear"

    def test_sum_avg(self):
        assert fold_exact(["1", "2", "3"], "sum") == 6.0
        assert fold_exact(["1", "2", "3"], "avg") == 2.0

    def test_empty_min_is_none(self):
        assert fold_exact([], "min") is None

    def test_unknown_function_rejected(self):
        with pytest.raises(ValueError):
            fold_exact(["1"], "median")


@pytest.fixture
def system(healthcare_doc, healthcare_scs):
    return SecureXMLSystem.host(healthcare_doc, healthcare_scs, scheme="opt")


class TestExactMode:
    def test_count_matches_oracle(self, system, healthcare_doc):
        expected = len(evaluate(healthcare_doc, "//policy#"))
        assert system.aggregate("//policy#", "count") == expected

    def test_min_max_on_plaintext_field(self, system):
        assert system.aggregate("//patient/age", "min") == "35"
        assert system.aggregate("//patient/age", "max") == "40"

    def test_avg(self, system):
        assert system.aggregate("//patient/age", "avg") == 37.5

    def test_with_predicate(self, system):
        assert system.aggregate("//patient[pname='Matt']/age", "min") == "40"

    def test_empty_selection(self, system):
        assert system.aggregate("//nothing", "min") is None
        assert system.aggregate("//nothing", "count") == 0


class TestServerMode:
    def test_min_max_on_encrypted_field(self, system, healthcare_doc):
        """No-decryption MIN/MAX matches the exact pipeline."""
        covered = next(
            f for f in sorted(system.hosted.field_plans)
            if not f.startswith("@")
        )
        query = f"//{covered}"
        for func in ("min", "max"):
            exact = system.aggregate(query, func, mode="exact")
            server = system.aggregate(query, func, mode="server")
            assert server == exact, (func, covered)

    def test_min_max_on_plaintext_field_server_mode(self, system):
        assert system.aggregate("//patient/age", "min", mode="server") == "35"
        assert system.aggregate("//patient/age", "max", mode="server") == "40"

    def test_structural_restriction(self, system, healthcare_doc):
        # Only Betty's SSN qualifies structurally; under opt granularity
        # the server-side fold is exact.
        query = "//patient[age<36]//SSN"
        exact = system.aggregate(query, "max", mode="exact")
        server = system.aggregate(query, "max", mode="server")
        assert server == exact == "763895"

    def test_count_rejected_server_side(self, system):
        """The paper: COUNT cannot be evaluated without decryption."""
        with pytest.raises(ValueError):
            system.aggregate("//SSN", "count", mode="server")

    def test_unknown_mode_rejected(self, system):
        with pytest.raises(ValueError):
            system.aggregate("//SSN", "min", mode="magic")

    def test_empty_selection_server_mode(self, system):
        assert system.aggregate("//nothing", "min", mode="server") is None

    @pytest.mark.parametrize("kind", ["opt", "app"])
    def test_nasa_server_aggregates_match_exact(self, kind, nasa_doc, nasa_scs):
        system = SecureXMLSystem.host(nasa_doc, nasa_scs, scheme=kind)
        covered = [
            f for f in sorted(system.hosted.field_plans)
            if not f.startswith("@")
        ]
        for field in covered[:2]:
            for func in ("min", "max"):
                exact = system.aggregate(f"//{field}", func, mode="exact")
                server = system.aggregate(f"//{field}", func, mode="server")
                assert server == exact, (kind, field, func)


class TestStrawmanHosting:
    """The §4.1 insecure mode: works functionally, fails the attack test."""

    def test_leaf_scheme_secure_hosting_exact(self, healthcare_doc, healthcare_scs):
        system = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="leaf"
        )
        answer = system.query("//patient[pname='Betty']//disease")
        assert sorted(answer.values()) == ["diarrhea", "diarrhea"]

    def test_insecure_hosting_still_answers_exactly(
        self, healthcare_doc, healthcare_scs
    ):
        system = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="leaf", secure=False
        )
        answer = system.query("//treat[disease='leukemia']/doctor")
        assert answer.values() == ["Brown"]

    def test_insecure_hosting_has_no_decoys(self, healthcare_doc, healthcare_scs):
        system = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="leaf", secure=False
        )
        assert system.hosted.decoy_count == 0
        assert not system.hosted.secure

    def test_insecure_equal_leaves_collide(self, healthcare_doc, healthcare_scs):
        """Deterministic encryption: the two diarrhea blocks are identical."""
        from repro.security.attacks import ciphertext_block_histogram

        system = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="leaf", secure=False
        )
        token = system.hosted.field_tokens["disease"]
        histogram = ciphertext_block_histogram(system.hosted, token)
        assert sorted(histogram.values()) == [1, 2]  # plaintext profile leaks

    def test_secure_leaf_blocks_all_distinct(self, healthcare_doc, healthcare_scs):
        from repro.security.attacks import ciphertext_block_histogram

        system = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="leaf", secure=True
        )
        token = system.hosted.field_tokens["disease"]
        histogram = ciphertext_block_histogram(system.hosted, token)
        assert set(histogram.values()) == {1}
