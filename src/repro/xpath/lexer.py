"""Tokenizer for the XPath fragment.

Produces a flat list of :class:`Token` objects consumed by the
recursive-descent parser.  Token kinds are deliberately coarse — the grammar
is small enough that the parser disambiguates on ``value`` where needed.
"""

from __future__ import annotations

from dataclasses import dataclass


class XPathSyntaxError(ValueError):
    """Raised on malformed XPath input."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


#: Token kinds.
SLASH = "SLASH"              # /
DOUBLE_SLASH = "DSLASH"      # //
NAME = "NAME"                # element or axis name
STAR = "STAR"                # *
AT = "AT"                    # @
DOT = "DOT"                  # .
DOTDOT = "DOTDOT"            # ..
LBRACKET = "LBRACKET"        # [
RBRACKET = "RBRACKET"        # ]
AXIS_SEP = "AXIS"            # ::
OPERATOR = "OP"              # = != < <= > >=
STRING = "STRING"            # 'x' or "x"
NUMBER = "NUMBER"            # 123 or 12.5
COMMA = "COMMA"              # , (used by the SC parser)
LPAREN = "LPAREN"            # (
RPAREN = "RPAREN"            # )
COLON = "COLON"              # : (used by the SC parser)
END = "END"

# '#' is included because the paper's running example uses tags like
# "policy#" (Figure 2).
_NAME_EXTRA = set("_.-#")


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source offset."""

    kind: str
    value: str
    position: int


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text``; always ends with an END token."""
    tokens: list[Token] = []
    pos = 0
    length = len(text)
    while pos < length:
        char = text[pos]
        if char.isspace():
            pos += 1
            continue
        if text.startswith("//", pos):
            tokens.append(Token(DOUBLE_SLASH, "//", pos))
            pos += 2
        elif char == "/":
            tokens.append(Token(SLASH, "/", pos))
            pos += 1
        elif text.startswith("::", pos):
            tokens.append(Token(AXIS_SEP, "::", pos))
            pos += 2
        elif char == ":":
            tokens.append(Token(COLON, ":", pos))
            pos += 1
        elif char == "*":
            tokens.append(Token(STAR, "*", pos))
            pos += 1
        elif char == "@":
            tokens.append(Token(AT, "@", pos))
            pos += 1
        elif text.startswith("..", pos):
            tokens.append(Token(DOTDOT, "..", pos))
            pos += 2
        elif char == "." and not (pos + 1 < length and text[pos + 1].isdigit()):
            tokens.append(Token(DOT, ".", pos))
            pos += 1
        elif char == "[":
            tokens.append(Token(LBRACKET, "[", pos))
            pos += 1
        elif char == "]":
            tokens.append(Token(RBRACKET, "]", pos))
            pos += 1
        elif char == "(":
            tokens.append(Token(LPAREN, "(", pos))
            pos += 1
        elif char == ")":
            tokens.append(Token(RPAREN, ")", pos))
            pos += 1
        elif char == ",":
            tokens.append(Token(COMMA, ",", pos))
            pos += 1
        elif text.startswith("!=", pos):
            tokens.append(Token(OPERATOR, "!=", pos))
            pos += 2
        elif text.startswith("<=", pos):
            tokens.append(Token(OPERATOR, "<=", pos))
            pos += 2
        elif text.startswith(">=", pos):
            tokens.append(Token(OPERATOR, ">=", pos))
            pos += 2
        elif char in "=<>":
            tokens.append(Token(OPERATOR, char, pos))
            pos += 1
        elif char in ("'", '"'):
            end = text.find(char, pos + 1)
            if end < 0:
                raise XPathSyntaxError("unterminated string literal", pos)
            tokens.append(Token(STRING, text[pos + 1 : end], pos))
            pos = end + 1
        elif (
            char.isdigit()
            or (char == "." and pos + 1 < length)
            or (
                char == "-"
                and pos + 1 < length
                and text[pos + 1].isdigit()
            )
        ):
            # A leading '-' starts a negative literal; inside names '-' is
            # consumed by the NAME rule, so this position is unambiguous.
            start = pos
            pos += 1
            seen_dot = char == "."
            while pos < length and (
                text[pos].isdigit() or (text[pos] == "." and not seen_dot)
            ):
                if text[pos] == ".":
                    seen_dot = True
                pos += 1
            tokens.append(Token(NUMBER, text[start:pos], pos))
        elif char.isalpha() or char == "_":
            start = pos
            pos += 1
            while pos < length and (
                text[pos].isalnum() or text[pos] in _NAME_EXTRA
            ):
                # A '.' only continues a name if followed by a name char
                # (guards against "a.b" vs trailing periods in prose).
                if text[pos] == "." and not (
                    pos + 1 < length and (text[pos + 1].isalnum() or text[pos + 1] == "_")
                ):
                    break
                pos += 1
            tokens.append(Token(NAME, text[start:pos], start))
        else:
            raise XPathSyntaxError(f"unexpected character {char!r}", pos)
    tokens.append(Token(END, "", length))
    return tokens
