"""Stack-based binary structural joins (Al-Khalifa et al., ICDE 2002).

The paper's server "computes any of the standard structural join
algorithms" over DSI intervals (§6.2) and cites the Stack-Tree family [4]
as the primitive.  This module implements the classic merge:
given an ancestor candidate list and a descendant candidate list, both
sorted by interval start, :func:`stack_tree_desc` emits every
(ancestor, descendant) pair in one linear pass with an explicit stack —
O(|A| + |D| + |output|) instead of the nested-loop product.

The twig matcher in :mod:`repro.core.structural_join` normally uses the
precomputed parent pointers (possible because it owns the whole laminar
forest); this module is the drop-in the paper actually names, used by the
join ablation benchmark and available for callers that only hold the two
sorted lists.
"""

from __future__ import annotations

from typing import Optional

from repro.core.dsi import IndexEntry
from repro.xpath.axes import order_bounds, sibling_bounds


def stack_tree_desc(
    ancestors: list[IndexEntry],
    descendants: list[IndexEntry],
) -> list[tuple[IndexEntry, IndexEntry]]:
    """All (a, d) pairs with a's interval strictly containing d's.

    Both inputs must be sorted by ``interval.low`` (the DSI table's order).
    Output pairs are sorted by the descendant's position, matching the
    original algorithm's Stack-Tree-Desc variant.
    """
    pairs: list[tuple[IndexEntry, IndexEntry]] = []
    stack: list[IndexEntry] = []
    a_index = 0
    d_index = 0
    while d_index < len(descendants):
        descendant = descendants[d_index]
        # Push every ancestor that starts before this descendant.
        while (
            a_index < len(ancestors)
            and ancestors[a_index].interval.low < descendant.interval.low
        ):
            candidate = ancestors[a_index]
            # Pop ancestors that ended before this candidate starts.
            while stack and stack[-1].interval.high < candidate.interval.low:
                stack.pop()
            stack.append(candidate)
            a_index += 1
        # Pop ancestors that ended before the descendant starts.
        while stack and stack[-1].interval.high < descendant.interval.low:
            stack.pop()
        # Every ancestor still on the stack contains the descendant
        # (the stack is a containment chain).
        for ancestor in stack:
            if ancestor.interval.contains(descendant.interval):
                pairs.append((ancestor, descendant))
        d_index += 1
    return pairs


def join_descendants(
    ancestors: list[IndexEntry],
    descendants: list[IndexEntry],
) -> tuple[list[IndexEntry], list[IndexEntry]]:
    """Semi-join both sides: ancestors with ≥1 descendant and vice versa.

    This is the pruning the twig matcher needs per pattern edge ("prune
    index entries at query nodes", §6.2 step 1): each side keeps only the
    entries participating in at least one structural pair.
    """
    pairs = stack_tree_desc(ancestors, descendants)
    kept_ancestors: dict[int, IndexEntry] = {}
    kept_descendants: dict[int, IndexEntry] = {}
    for ancestor, descendant in pairs:
        kept_ancestors.setdefault(id(ancestor), ancestor)
        kept_descendants.setdefault(id(descendant), descendant)
    return (
        sorted(kept_ancestors.values(), key=lambda e: e.interval.low),
        sorted(kept_descendants.values(), key=lambda e: e.interval.low),
    )


def entry_order_bounds(
    entries: list[IndexEntry],
) -> Optional[tuple[float, float]]:
    """``(min low, max high)`` of an anchor set, for order-axis joins.

    The axis engine's *following*/*preceding* semi-joins reduce to two
    scalar thresholds over the anchor side (see the interval-algebra
    table in :mod:`repro.xpath.axes`): an entry can follow some anchor
    iff its high bound exceeds the anchors' minimum low, and can precede
    some anchor iff its low bound undercuts the anchors' maximum high.
    """
    return order_bounds(
        (entry.interval.low, entry.interval.high) for entry in entries
    )


def entry_sibling_bounds(
    entries: list[IndexEntry],
) -> dict[object, tuple[float, float]]:
    """Per-parent ``(min low, max high)`` of an anchor set.

    The sibling-axis semi-joins are the order-axis thresholds scoped to
    one parent; parents are keyed by object identity (the laminar forest
    owns one entry object per node), with ``None`` for forest roots.
    """
    return sibling_bounds(
        (
            id(entry.parent) if entry.parent is not None else None,
            entry.interval.low,
            entry.interval.high,
        )
        for entry in entries
    )


def join_following(
    anchors: list[IndexEntry],
    candidates: list[IndexEntry],
) -> list[IndexEntry]:
    """Candidates that can *follow* at least one anchor (relaxed form).

    Entries are grouped intervals, so the exact disjoint-after test
    widens to ``candidate.high > min(anchor.low)`` — sound as a
    superset, like every other server-side axis test.  Order-preserving
    over ``candidates``.
    """
    bounds = entry_order_bounds(anchors)
    if bounds is None:
        return []
    min_low, _ = bounds
    return [c for c in candidates if c.interval.high > min_low]


def join_preceding(
    anchors: list[IndexEntry],
    candidates: list[IndexEntry],
) -> list[IndexEntry]:
    """Candidates that can *precede* at least one anchor (relaxed form)."""
    bounds = entry_order_bounds(anchors)
    if bounds is None:
        return []
    _, max_high = bounds
    return [c for c in candidates if c.interval.low < max_high]


def join_siblings(
    anchors: list[IndexEntry],
    candidates: list[IndexEntry],
    direction: str = "following",
) -> list[IndexEntry]:
    """Sibling-axis semi-join: same parent plus the order threshold."""
    bounds_by_parent = entry_sibling_bounds(anchors)
    kept: list[IndexEntry] = []
    for candidate in candidates:
        key = (
            id(candidate.parent) if candidate.parent is not None else None
        )
        bounds = bounds_by_parent.get(key)
        if bounds is None:
            continue
        if direction == "following":
            if candidate.interval.high > bounds[0]:
                kept.append(candidate)
        elif candidate.interval.low < bounds[1]:
            kept.append(candidate)
    return kept


def join_children(
    parents: list[IndexEntry],
    children: list[IndexEntry],
) -> tuple[list[IndexEntry], list[IndexEntry]]:
    """Child-axis variant using the derived child relation (§5.1).

    Runs the descendant join, then filters pairs to immediate containment
    — the paper's ``child(x,y) ⇔ desc(x,y) ∧ ¬∃z`` definition, decided
    here with the precomputed parent pointer of the laminar forest.
    """
    pairs = stack_tree_desc(parents, children)
    kept_parents: dict[int, IndexEntry] = {}
    kept_children: dict[int, IndexEntry] = {}
    for parent, child in pairs:
        if child.parent is parent:
            kept_parents.setdefault(id(parent), parent)
            kept_children.setdefault(id(child), child)
    return (
        sorted(kept_parents.values(), key=lambda e: e.interval.low),
        sorted(kept_children.values(), key=lambda e: e.interval.low),
    )
