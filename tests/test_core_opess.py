"""Tests for OPESS: splitting, scaling, and the value index (§5.2)."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.opess import (
    KeyRange,
    ValueIndex,
    build_field_plan,
    build_value_index,
    chunk_ciphertexts,
    decompose_count,
    find_chunk_triple,
    translate_predicate,
)
from repro.crypto.ope import OrderPreservingEncryption
from repro.crypto.prf import DeterministicRandom


def ope():
    return OrderPreservingEncryption(b"o" * 16)


def stream(label="s"):
    return DeterministicRandom(b"s" * 16, label)


class TestChunkTriple:
    def test_paper_example_34(self):
        """The paper's 34 = 1·6 + 4·7 + 0·8 decomposition (m = 7)."""
        chunks = decompose_count(34, 7)
        assert sum(chunks) == 34
        assert set(chunks) <= {6, 7, 8}
        assert chunks == [6, 7, 7, 7, 7]

    def test_triple_2_3_4_expresses_everything(self):
        for n in range(2, 200):
            chunks = decompose_count(n, 3)
            assert sum(chunks) == n
            assert set(chunks) <= {2, 3, 4}

    def test_find_chunk_triple_maximal(self):
        # All counts >= 6: m can rise to 7 (6|7|8 chunks).
        m = find_chunk_triple([6, 7, 8, 13, 34])
        assert m >= 3
        for n in [6, 7, 8, 13, 34]:
            assert set(decompose_count(n, m)) <= {m - 1, m, m + 1}

    def test_find_chunk_triple_ignores_singletons(self):
        assert find_chunk_triple([1, 1, 1]) == 3

    def test_min_count_bounds_m(self):
        m = find_chunk_triple([2, 50])
        assert m == 3  # 2 = 1·2 forces m−1 <= 2

    @given(st.lists(st.integers(2, 500), min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_decomposition_always_valid(self, counts):
        m = find_chunk_triple(counts)
        for n in counts:
            chunks = decompose_count(n, m)
            assert sum(chunks) == n
            assert set(chunks) <= {m - 1, m, m + 1}

    def test_decompose_rejects_singleton(self):
        with pytest.raises(ValueError):
            decompose_count(1, 3)


class TestFieldPlan:
    def test_numeric_field_detected(self):
        plan = build_field_plan("age", Counter({"30": 5, "41": 3}), stream(), ope())
        assert plan.is_numeric
        assert plan.position("30") is not None

    def test_categorical_field_ranked(self):
        plan = build_field_plan(
            "name", Counter({"bob": 4, "alice": 6}), stream(), ope()
        )
        assert not plan.is_numeric
        assert plan.position("alice") < plan.position("bob")

    def test_weights_sorted_distinct_in_range(self):
        plan = build_field_plan(
            "v", Counter({str(i): 5 + i for i in range(8)}), stream(), ope()
        )
        weights = plan.weights
        assert weights == sorted(weights)
        assert len(set(weights)) == len(weights)
        assert all(0 < w < 1 / (plan.key_count + 1) for w in weights)

    def test_max_displacement_below_delta(self):
        """Requirement (*): displacements never straddle the next value."""
        plan = build_field_plan(
            "v", Counter({"10": 7, "11": 9, "25": 3}), stream(), ope()
        )
        assert plan.max_displacement < plan.delta

    def test_delta_is_min_gap(self):
        plan = build_field_plan(
            "v", Counter({"10": 3, "11": 3, "99": 3}), stream(), ope()
        )
        assert plan.delta == pytest.approx(1.0 * plan.stretch)

    def test_scales_in_range(self):
        plan = build_field_plan(
            "v", Counter({str(i): 4 for i in range(10)}), stream(), ope()
        )
        assert all(1 <= s <= 10 for s in plan.scales.values())

    def test_singleton_rule(self):
        plan = build_field_plan("v", Counter({"5": 1, "9": 6}), stream(), ope())
        assert plan.chunk_plan["5"] == [1] * plan.m

    def test_literal_position_for_unknown_categorical(self):
        plan = build_field_plan(
            "v", Counter({"apple": 3, "cherry": 4}), stream(), ope()
        )
        position = plan.position_for_literal("banana")
        assert plan.position("apple") < position < plan.position("cherry")

    def test_empty_field_rejected(self):
        with pytest.raises(ValueError):
            build_field_plan("v", Counter(), stream(), ope())


class TestFlattening:
    """Figure 6: the ciphertext distribution is near-uniform."""

    def test_skewed_input_flattens(self):
        histogram = Counter(
            {"1001": 16, "932": 8, "23": 26, "77": 7, "90": 34, "12": 13}
        )
        plan = build_field_plan("fig6", histogram, stream(), ope())
        m = plan.m
        for value, chunks in plan.chunk_plan.items():
            if histogram[value] == 1:
                continue
            assert set(chunks) <= {m - 1, m, m + 1}

    def test_ciphertexts_strictly_ordered_within_and_across(self):
        histogram = Counter({"10": 7, "20": 9, "30": 4})
        plan = build_field_plan("v", histogram, stream(), ope())
        encryption = ope()
        all_ciphertexts = []
        for value in plan.ordered_values:
            ciphertexts = chunk_ciphertexts(plan, value, encryption)
            assert ciphertexts == sorted(ciphertexts)
            assert len(set(ciphertexts)) == len(ciphertexts)
            all_ciphertexts.extend(ciphertexts)
        # Requirement (*): no straddling between different values.
        assert all_ciphertexts == sorted(all_ciphertexts)

    def test_total_occurrences_preserved_before_scaling(self):
        histogram = Counter({"5": 12, "6": 9})
        plan = build_field_plan("v", histogram, stream(), ope())
        for value, count in histogram.items():
            assert sum(plan.chunk_plan[value]) == count


def build_small_index():
    occurrences = {
        "age": [("30", 1), ("30", 1), ("30", 2), ("41", 2), ("41", 3)]
    }
    plans = {
        "age": build_field_plan(
            "age", Counter({"30": 3, "41": 2}), stream(), ope()
        )
    }
    tokens = {"age": "AGETOKEN"}
    index = build_value_index(occurrences, plans, tokens, ope())
    return index, plans["age"]


class TestValueIndex:
    def test_entries_scaled(self):
        index, plan = build_small_index()
        tree = index.tree_for("AGETOKEN")
        expected = sum(
            sum(plan.chunk_plan[v]) * plan.scales[v] for v in ("30", "41")
        )
        assert len(tree) == expected

    def test_lookup_blocks_equality(self):
        index, plan = build_small_index()
        ranges = translate_predicate(plan, "=", "30", ope())
        assert index.lookup_blocks("AGETOKEN", ranges) == {1, 2}

    def test_lookup_blocks_range(self):
        index, plan = build_small_index()
        ranges = translate_predicate(plan, ">", "30", ope())
        assert index.lookup_blocks("AGETOKEN", ranges) == {2, 3}
        ranges = translate_predicate(plan, "<", "41", ope())
        assert index.lookup_blocks("AGETOKEN", ranges) == {1, 2}

    def test_lookup_unknown_field(self):
        index, _ = build_small_index()
        assert index.lookup_blocks("NOPE", [KeyRange(None, None)]) == set()

    def test_ciphertext_histogram_hides_plaintext_counts(self):
        """The §5.2 point: observed frequencies are chunk·scale, not nᵢ."""
        index, plan = build_small_index()
        histogram = index.ciphertext_histogram("AGETOKEN")
        assert 3 not in set(histogram.values()) or plan.scales["30"] != 1


class TestPredicateTranslation:
    """Figure 7(a) semantics, checked against brute-force evaluation."""

    @pytest.fixture
    def setup(self):
        histogram = Counter({"10": 5, "20": 7, "30": 4, "40": 6})
        plan = build_field_plan("f", histogram, stream("f"), ope())
        encryption = ope()
        cipher_of = {
            value: chunk_ciphertexts(plan, value, encryption)
            for value in histogram
        }
        return plan, encryption, cipher_of

    @pytest.mark.parametrize("op", ["=", "<", "<=", ">", ">=", "!="])
    @pytest.mark.parametrize("literal", ["10", "20", "30", "40", "25"])
    def test_range_covers_exactly_matching_values(self, setup, op, literal):
        plan, encryption, cipher_of = setup
        ranges = translate_predicate(plan, op, literal, encryption)

        def in_ranges(ciphertext):
            return any(
                (r.low is None or ciphertext >= r.low)
                and (r.high is None or ciphertext <= r.high)
                for r in ranges
            )

        from repro.xpath.evaluator import compare_values

        for value, ciphertexts in cipher_of.items():
            expected = compare_values(value, op, literal)
            got = any(in_ranges(c) for c in ciphertexts)
            if expected:
                assert got, f"{value} {op} {literal} lost"
            elif op not in ("!=",) and plan.position(literal) is not None:
                # Known literals translate exactly; unknown ones may
                # over-approximate (server returns a superset).
                assert not got or value == literal, (
                    f"{value} {op} {literal} over-matched"
                )

    def test_equality_on_unknown_literal_is_empty(self, setup):
        plan, encryption, _ = setup
        assert translate_predicate(plan, "=", "25", encryption) == []

    def test_unsupported_operator_rejected(self, setup):
        plan, encryption, _ = setup
        with pytest.raises(ValueError):
            translate_predicate(plan, "~", "10", encryption)
