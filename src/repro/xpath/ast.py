"""Abstract syntax tree for the XPath fragment.

The AST mirrors the XPath 1.0 data model restricted to what the paper uses:
a :class:`LocationPath` is a sequence of :class:`Step` objects, each with an
axis, a :class:`NodeTest` and optional :class:`Predicate` filters.  Predicates
contain either an existence test, a value comparison against a literal, or a
1-based position test.

All AST classes are immutable value objects with structural equality, which
lets tests compare parsed queries directly and lets the query translator
rebuild encrypted queries by reconstructing nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

# Axis names (a deliberate subset of XPath 1.0).
AXIS_CHILD = "child"
AXIS_DESCENDANT = "descendant"
AXIS_DESCENDANT_OR_SELF = "descendant-or-self"
AXIS_SELF = "self"
AXIS_PARENT = "parent"
AXIS_ANCESTOR = "ancestor"
AXIS_ANCESTOR_OR_SELF = "ancestor-or-self"
AXIS_ATTRIBUTE = "attribute"
AXIS_FOLLOWING_SIBLING = "following-sibling"
AXIS_PRECEDING_SIBLING = "preceding-sibling"
AXIS_FOLLOWING = "following"
AXIS_PRECEDING = "preceding"
AXIS_NAMESPACE = "namespace"

ALL_AXES = frozenset(
    {
        AXIS_NAMESPACE,
        AXIS_CHILD,
        AXIS_DESCENDANT,
        AXIS_DESCENDANT_OR_SELF,
        AXIS_SELF,
        AXIS_PARENT,
        AXIS_ANCESTOR,
        AXIS_ANCESTOR_OR_SELF,
        AXIS_ATTRIBUTE,
        AXIS_FOLLOWING_SIBLING,
        AXIS_PRECEDING_SIBLING,
        AXIS_FOLLOWING,
        AXIS_PRECEDING,
    }
)

#: Comparison operators supported in value predicates.
COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")


@dataclass(frozen=True)
class NodeTest:
    """Matches a node by name: a specific name or the ``*`` wildcard."""

    name: str  # "*" means any

    @property
    def is_wildcard(self) -> bool:
        return self.name == "*"

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Exists:
    """Existence predicate ``[path]``."""

    path: "LocationPath"

    def __str__(self) -> str:
        return str(self.path)


@dataclass(frozen=True)
class Comparison:
    """Value predicate ``[path op literal]``.

    ``literal`` keeps the source text; :attr:`numeric` is the parsed number
    when the literal is numeric, which determines comparison semantics
    (numeric when both sides parse as numbers, string otherwise).
    """

    path: "LocationPath"
    op: str
    literal: str

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise ValueError(f"unsupported comparison operator {self.op!r}")

    @property
    def numeric(self) -> Optional[float]:
        try:
            return float(self.literal)
        except ValueError:
            return None

    def __str__(self) -> str:
        literal = self.literal
        if self.numeric is None:
            literal = f"'{literal}'"
        return f"{self.path}{self.op}{literal}"


#: Sentinel index for ``[last()]`` — resolved against the live candidate
#: list at evaluation time, like Python's ``seq[-1]``.
LAST = -1


@dataclass(frozen=True)
class Position:
    """Positional predicate ``[n]`` (1-based, per XPath).

    ``[position()=n]`` normalizes to the same node, and ``[last()]`` is
    carried as the :data:`LAST` sentinel so every layer downstream of the
    parser sees a single positional shape.
    """

    index: int

    @property
    def is_last(self) -> bool:
        return self.index == LAST

    def __str__(self) -> str:
        if self.is_last:
            return "last()"
        return str(self.index)


PredicateExpr = Union[Exists, Comparison, Position]


@dataclass(frozen=True)
class Predicate:
    """A single ``[...]`` filter attached to a step."""

    expr: PredicateExpr

    def __str__(self) -> str:
        return f"[{self.expr}]"


@dataclass(frozen=True)
class Step:
    """One location step: ``axis::nodetest[pred]*``."""

    axis: str
    test: NodeTest
    predicates: tuple[Predicate, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.axis not in ALL_AXES:
            raise ValueError(f"unsupported axis {self.axis!r}")

    def with_predicates(self, predicates: tuple[Predicate, ...]) -> "Step":
        return Step(self.axis, self.test, predicates)

    def __str__(self) -> str:
        preds = "".join(str(p) for p in self.predicates)
        if self.axis == AXIS_CHILD:
            return f"{self.test}{preds}"
        if self.axis == AXIS_ATTRIBUTE:
            return f"@{self.test}{preds}"
        if self.axis == AXIS_SELF and self.test.is_wildcard and not preds:
            return "."
        if self.axis == AXIS_PARENT and self.test.is_wildcard and not preds:
            return ".."
        return f"{self.axis}::{self.test}{preds}"


@dataclass(frozen=True)
class LocationPath:
    """A parsed location path.

    ``absolute`` distinguishes ``/a/b`` (and ``//a``) from relative paths;
    a leading ``//`` is represented as an absolute path whose first step uses
    the descendant-or-self axis, matching XPath's desugaring.
    """

    absolute: bool
    steps: tuple[Step, ...]

    def __str__(self) -> str:
        text = ""
        separator = "/" if self.absolute else ""
        for step in self.steps:
            is_abbreviated_slashes = (
                step.axis == AXIS_DESCENDANT_OR_SELF
                and step.test.is_wildcard
                and not step.predicates
            )
            if is_abbreviated_slashes:
                # A bare descendant-or-self::* step renders as the '//'
                # separator of the following step.
                separator = "//"
                continue
            text += separator + str(step)
            separator = "/"
        if not text:
            return "/" if self.absolute else "."
        return text


def canonical_text(path: LocationPath) -> str:
    """Unambiguous rendering used for logging and round-trip tests.

    Unlike ``str(path)`` this never abbreviates: every step is written with
    an explicit axis, so ``//a`` becomes
    ``/descendant-or-self::*/child::a``.
    """
    pieces: list[str] = []
    for step in path.steps:
        preds = "".join(str(p) for p in step.predicates)
        pieces.append(f"{step.axis}::{step.test}{preds}")
    prefix = "/" if path.absolute else ""
    return prefix + "/".join(pieces)
