"""Incremental updates over a hosted database (extension; paper §8 item 3).

"Developing a secure encryption scheme for efficiently supporting updates
is another important problem." — the paper leaves updates as future work.
This module implements the natural extension the DSI design invites: the
random *gaps* between sibling intervals (§5.1) leave room to place a new
node's interval without relabeling anything, so a hosted system can accept
leaf-level inserts, deletes and value updates while preserving the exact
query contract.

Supported operations (see :class:`UpdateEngine`):

* :meth:`UpdateEngine.insert_element` — add a new leaf element under a
  plaintext parent.  If the tag is sensitive (already encrypted somewhere,
  or covered by a constraint field), the new leaf becomes its own
  encryption block with a decoy, its interval is drawn inside the parent's
  trailing gap, and the field's OPESS plan and B-tree are rebuilt
  (histograms change, so splitting must be re-planned — *field-granular*
  incrementality).
* :meth:`UpdateEngine.delete_element` — remove a plaintext subtree or an
  encrypted block, along with every index entry, block payload and value
  occurrence beneath it.
* :meth:`UpdateEngine.update_value` — rewrite one leaf's value (in place
  for plaintext leaves; re-encrypting the enclosing single-leaf block for
  encrypted ones).

Security caveat, stated openly: the paper's theorems cover a static
hosting.  These updates preserve *query* security (the server still sees
only tokens, intervals and ciphertext), but the update *trace* itself —
which blocks changed and when — is outside the paper's attack model,
exactly the open problem §8 flags.
"""

from __future__ import annotations

from bisect import insort
from collections import Counter
from typing import Optional

from repro.core.decoy import inject_decoys
from repro.core.dsi import IndexEntry, Interval
from repro.core.encryptor import HostedDatabase
from repro.core.opess import build_field_plan, build_value_index
from repro.core.structural_join import match_pattern
from repro.crypto.keyring import ClientKeyring
from repro.crypto.modes import cbc_encrypt
from repro.xmldb.node import Element, EncryptedBlockNode, Node, Text
from repro.xmldb.serializer import serialize


class UpdateError(ValueError):
    """Raised when an update cannot be applied safely."""


class UpdateEngine:
    """Applies incremental updates to a hosted database.

    The engine mutates the :class:`HostedDatabase` in place; the system
    façade rebuilds its client translator afterwards so subsequent query
    translation sees the updated tag/field knowledge.
    """

    def __init__(self, hosted: HostedDatabase, keyring: ClientKeyring) -> None:
        if not hosted.secure:
            raise UpdateError("updates require a securely hosted database")
        self._hosted = hosted
        self._keyring = keyring

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------
    def insert_element(
        self, parent: "IndexEntry | Element", tag: str, value: str
    ) -> None:
        """Insert ``<tag>value</tag>`` as the last child of ``parent``.

        ``parent`` is a plaintext index entry (or its hosted element).  The
        new leaf is encrypted as its own block when the tag is sensitive —
        already encrypted elsewhere, or an SC-covered field — and kept in
        plaintext otherwise.
        """
        entry = self._resolve_parent(parent)
        hosted_parent = entry.hosted_node
        assert isinstance(hosted_parent, Element)

        interval = self._allocate_child_interval(entry)
        sensitive = tag in self._hosted.encrypted_tags

        new_element = Element(tag)
        new_element.append(Text(value))
        new_element.node_id = self._next_hosted_id()

        if sensitive:
            block_id = self._next_block_id()
            payload = self._encrypt_block(new_element, block_id)
            placeholder = EncryptedBlockNode(block_id, payload)
            placeholder.node_id = new_element.node_id
            hosted_parent.append(placeholder)
            self._hosted.blocks[block_id] = payload
            self._hosted.set_block_tag(
                block_id, self._keyring.block_tag(block_id, payload)
            )
            self._hosted.placeholders[block_id] = placeholder
            self._hosted.structural_index.block_table[block_id] = interval
            key = self._keyring.tag_cipher.encrypt_tag(tag)
            self._add_entry(
                IndexEntry(
                    key=key,
                    interval=interval,
                    member_ids=(new_element.node_id,),
                    block_id=block_id,
                )
            )
            self._add_occurrence(tag, value, block_id)
        else:
            hosted_parent.append(new_element)
            self._hosted.plaintext_keys.add(tag)
            self._add_entry(
                IndexEntry(
                    key=tag,
                    interval=interval,
                    member_ids=(new_element.node_id,),
                    block_id=None,
                    plaintext_value=value,
                    hosted_node=new_element,
                )
            )
        self._hosted.bump_epoch()

    # ------------------------------------------------------------------
    # Delete
    # ------------------------------------------------------------------
    def delete_element(self, target: IndexEntry) -> None:
        """Delete the subtree behind an index entry.

        Plaintext entries remove their hosted subtree (including any
        encrypted blocks nested below it); encrypted entries remove the
        enclosing block entirely (the block is the unit of encryption, so
        a grouped entry's members leave together).
        """
        if target.block_id is not None:
            self._delete_block(target.block_id)
            self._hosted.bump_epoch()
            return
        node = target.hosted_node
        if node is None or node.parent is None:
            raise UpdateError("cannot delete the document root")
        # Remove blocks nested below the plaintext subtree first.
        for descendant in list(node.iter()):
            if isinstance(descendant, EncryptedBlockNode):
                self._delete_block(descendant.block_id)
        node.detach()
        self._remove_entries_inside(target.interval, include_self=True)
        self._hosted.bump_epoch()

    # ------------------------------------------------------------------
    # Update value
    # ------------------------------------------------------------------
    def update_value(self, target: IndexEntry, new_value: str) -> None:
        """Rewrite the value of a leaf entry."""
        if target.block_id is None:
            node = target.hosted_node
            assert isinstance(node, Element)
            if not node.is_leaf_element:
                raise UpdateError("update_value needs a leaf element")
            text = node.children[0]
            assert isinstance(text, Text)
            text.value = new_value
            target.plaintext_value = new_value
            self._hosted.bump_epoch()
            return

        # Encrypted leaf: only single-leaf blocks can be value-updated
        # without structural knowledge of the block internals.
        if len(target.member_ids) != 1:
            raise UpdateError(
                "value update inside a grouped/multi-leaf block is not "
                "supported; delete and re-insert instead"
            )
        block_id = target.block_id
        tag = self._keyring.tag_cipher.decrypt_tag(target.key)
        old_value = self._remove_block_occurrence(tag, block_id)
        if old_value is None:
            raise UpdateError("no indexed occurrence for this block")

        new_element = Element(tag)
        new_element.append(Text(new_value))
        payload = self._encrypt_block(new_element, block_id)
        self._hosted.blocks[block_id] = payload
        self._hosted.set_block_tag(
            block_id, self._keyring.block_tag(block_id, payload)
        )
        placeholder = self._hosted.placeholders[block_id]
        placeholder.payload = payload
        self._add_occurrence(tag, new_value, block_id)
        self._hosted.bump_epoch()

    # ------------------------------------------------------------------
    # Target resolution helpers (used by the system façade)
    # ------------------------------------------------------------------
    def resolve_single(self, translated_query) -> IndexEntry:
        """Resolve a translated query to exactly one output entry."""
        result = match_pattern(
            translated_query,
            self._hosted.structural_index,
            self._hosted.value_index,
        )
        if len(result.output_entries) != 1:
            raise UpdateError(
                f"update target must match exactly one node; "
                f"matched {len(result.output_entries)}"
            )
        return result.output_entries[0]

    def _resolve_parent(self, parent: "IndexEntry | Element") -> IndexEntry:
        if isinstance(parent, IndexEntry):
            entry = parent
        else:
            entry = next(
                (
                    candidate
                    for candidate in self._hosted.structural_index.all_entries()
                    if candidate.hosted_node is parent
                ),
                None,
            )
            if entry is None:
                raise UpdateError("parent element is not in the index")
        if entry.block_id is not None or entry.hosted_node is None:
            raise UpdateError(
                "insert parent must be a plaintext element; inserting "
                "inside an encrypted block requires delete + re-insert of "
                "the block"
            )
        return entry

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _allocate_child_interval(self, parent: IndexEntry) -> Interval:
        """Draw a fresh interval in the parent's trailing gap.

        The §5.1 construction leaves ``(max_N, parent.high)`` unused; we
        place the new child in the first part of whatever gap remains
        after the current last child, keeping room for further inserts.
        """
        children = sorted(
            (c.interval for c in parent.children), key=lambda i: i.high
        )
        gap_low = children[-1].high if children else parent.interval.low
        gap_high = parent.interval.high
        width = gap_high - gap_low
        if width <= 1e-12:
            raise UpdateError("no interval gap left under this parent")
        stream = self._keyring.dsi_weight_stream()
        w1 = stream.uniform(0.05, 0.30)
        w2 = stream.uniform(0.35, 0.60)
        return Interval(gap_low + width * w1, gap_low + width * w2)

    def _add_entry(self, entry: IndexEntry) -> None:
        index = self._hosted.structural_index
        # Parent = smallest existing interval strictly containing ours.
        parent: Optional[IndexEntry] = None
        for candidate in index.all_entries():
            if candidate.interval.contains(entry.interval):
                if parent is None or parent.interval.contains(
                    candidate.interval
                ):
                    parent = candidate
        entry.parent = parent
        if parent is not None:
            parent.children.append(entry)
        index.table.setdefault(entry.key, []).append(entry)
        insort(index.entries, entry, key=lambda e: e.interval.low)

    def _remove_entries_inside(
        self, interval: Interval, include_self: bool
    ) -> None:
        index = self._hosted.structural_index

        def doomed(entry: IndexEntry) -> bool:
            if interval.contains(entry.interval):
                return True
            return include_self and entry.interval == interval

        removed = [e for e in index.entries if doomed(e)]
        removed_ids = {id(e) for e in removed}
        index.entries = [e for e in index.entries if id(e) not in removed_ids]
        for key in list(index.table):
            index.table[key] = [
                e for e in index.table[key] if id(e) not in removed_ids
            ]
            if not index.table[key]:
                del index.table[key]
        for entry in index.entries:
            entry.children = [
                c for c in entry.children if id(c) not in removed_ids
            ]

    def _delete_block(self, block_id: int) -> None:
        hosted = self._hosted
        placeholder = hosted.placeholders.pop(block_id, None)
        if placeholder is not None and placeholder.parent is not None:
            placeholder.detach()
        hosted.blocks.pop(block_id, None)
        hosted.drop_block_tag(block_id)
        representative = hosted.structural_index.block_table.pop(
            block_id, None
        )
        index = hosted.structural_index
        removed = [e for e in index.entries if e.block_id == block_id]
        removed_ids = {id(e) for e in removed}
        index.entries = [e for e in index.entries if id(e) not in removed_ids]
        for key in list(index.table):
            index.table[key] = [
                e for e in index.table[key] if id(e) not in removed_ids
            ]
            if not index.table[key]:
                del index.table[key]
        for entry in index.entries:
            entry.children = [
                c for c in entry.children if id(c) not in removed_ids
            ]
        # Drop value occurrences pointing at the dead block.
        for field_name in list(hosted.occurrences):
            occurrence_list = hosted.occurrences[field_name]
            kept = [
                (value, block) for value, block in occurrence_list
                if block != block_id
            ]
            if len(kept) != len(occurrence_list):
                hosted.occurrences[field_name] = kept
                self._rebuild_field(field_name)

    def _encrypt_block(self, subtree: Element, block_id: int) -> bytes:
        inject_decoys(subtree, self._keyring.decoy_stream())
        plaintext = serialize(subtree).encode("utf-8")
        return cbc_encrypt(
            self._keyring.block_cipher,
            self._keyring.block_iv(block_id),
            plaintext,
        )

    def _add_occurrence(self, field_name: str, value: str, block_id: int) -> None:
        self._hosted.occurrences.setdefault(field_name, []).append(
            (value, block_id)
        )
        self._hosted.encrypted_tags.add(field_name)
        self._rebuild_field(field_name)

    def _remove_block_occurrence(
        self, field_name: str, block_id: int
    ) -> Optional[str]:
        occurrence_list = self._hosted.occurrences.get(field_name, [])
        for index, (value, block) in enumerate(occurrence_list):
            if block == block_id:
                del occurrence_list[index]
                return value
        return None

    def _rebuild_field(self, field_name: str) -> None:
        """Re-plan OPESS and rebuild the B-tree for one field."""
        hosted = self._hosted
        occurrence_list = hosted.occurrences.get(field_name, [])
        token = hosted.field_tokens.get(
            field_name
        ) or self._keyring.tag_cipher.encrypt_tag(field_name)
        hosted.field_tokens[field_name] = token
        if not occurrence_list:
            hosted.field_plans.pop(field_name, None)
            hosted.value_index.trees.pop(token, None)
            return
        histogram = Counter(value for value, _ in occurrence_list)
        plan = build_field_plan(
            field_name,
            histogram,
            self._keyring.opess_stream(field_name),
            self._keyring.ope,
        )
        hosted.field_plans[field_name] = plan
        rebuilt = build_value_index(
            {field_name: occurrence_list},
            {field_name: plan},
            {field_name: token},
            self._keyring.ope,
        )
        hosted.value_index.trees[token] = rebuilt.trees[token]

    def _next_block_id(self) -> int:
        existing = self._hosted.blocks
        return (max(existing) + 1) if existing else 1

    def _next_hosted_id(self) -> int:
        """Fresh hosted node id, from the database's high-water mark.

        O(1) per insert: the mark is seeded at hosting (or by one lazy
        full-tree scan for databases loaded from pre-mark storage) and
        maintained by every allocation; see
        :meth:`HostedDatabase.allocate_hosted_id`.
        """
        return self._hosted.allocate_hosted_id()
