"""Tests for the benchmark measurement harness."""

import pytest

from repro.bench.harness import (
    average_traces,
    format_table,
    run_query_class,
    saving_ratio,
    trimmed_mean,
)
from repro.core.system import QueryTrace, SecureXMLSystem


class TestTrimmedMean:
    def test_drops_one_max_one_min(self):
        # 100 and 0 dropped, mean of [10, 20, 30] = 20.
        assert trimmed_mean([10, 100, 20, 0, 30]) == 20

    def test_small_samples_plain_mean(self):
        assert trimmed_mean([4, 8]) == 6
        assert trimmed_mean([7]) == 7

    def test_empty(self):
        assert trimmed_mean([]) == 0.0

    def test_paper_protocol_five_trials(self):
        """'average of 5 trials after dropping the maximum and minimum'."""
        trials = [1.0, 1.1, 1.2, 5.0, 0.1]
        assert trimmed_mean(trials) == pytest.approx((1.0 + 1.1 + 1.2) / 3)


class TestSavingRatio:
    def test_definition(self):
        # S = (T_worse - T_better) / T_worse
        assert saving_ratio(10.0, 4.0) == pytest.approx(0.6)

    def test_no_saving(self):
        assert saving_ratio(5.0, 5.0) == 0.0

    def test_negative_when_slower(self):
        assert saving_ratio(4.0, 6.0) == pytest.approx(-0.5)

    def test_zero_baseline(self):
        assert saving_ratio(0.0, 1.0) == 0.0


class TestAverageTraces:
    def _trace(self, server, decrypt):
        trace = QueryTrace(query="//x")
        trace.server_s = server
        trace.decrypt_client_s = decrypt
        trace.transfer_bytes = 100
        return trace

    def test_stage_keys_present(self):
        averaged = average_traces([self._trace(1.0, 2.0)])
        assert set(averaged) >= {
            "t_server", "t_decrypt", "t_post", "t_translate",
            "t_transfer", "bytes", "blocks", "t_total",
        }

    def test_values_averaged(self):
        traces = [self._trace(s, 0.0) for s in (1.0, 2.0, 3.0, 4.0, 100.0)]
        averaged = average_traces(traces)
        assert averaged["t_server"] == pytest.approx(3.0)  # trims 1 and 100


class TestFormatTable:
    def test_alignment_and_title(self):
        table = format_table(
            ["name", "value"], [["alpha", 1.5], ["b", 20]], "My Title"
        )
        lines = table.splitlines()
        assert lines[0] == "My Title"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "1.5000" in table  # floats rendered with 4 decimals

    def test_empty_rows(self):
        table = format_table(["a"], [])
        assert "a" in table


class TestRunQueryClass:
    def test_end_to_end(self, healthcare_doc, healthcare_scs):
        system = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="opt"
        )
        result = run_query_class(system, "Qs", ["//patient", "//treat"])
        assert result.scheme == "opt"
        assert result.query_class == "Qs"
        assert result.query_count == 2
        assert result.total_s > 0

    def test_naive_flag(self, healthcare_doc, healthcare_scs):
        system = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="opt"
        )
        targeted = run_query_class(system, "Qs", ["//SSN"])
        naive = run_query_class(system, "Qs", ["//SSN"], naive=True)
        assert naive.transfer_bytes > targeted.transfer_bytes
