"""Unit tests for query → pattern-tree compilation."""

import pytest

from repro.xpath.compiler import UnsupportedQuery, compile_pattern
from repro.xpath.parser import parse_xpath


def compile_query(text):
    return compile_pattern(parse_xpath(text))


class TestSpineCompilation:
    def test_simple_chain(self):
        tree = compile_query("/a/b/c")
        root = tree.spine_root
        assert root.test == "a" and root.axis == "root-child"
        assert root.children[0].test == "b"
        assert root.children[0].axis == "child"
        assert tree.output.test == "c"
        assert tree.output.is_output

    def test_leading_double_slash(self):
        tree = compile_query("//a")
        assert tree.spine_root.axis == "root-descendant"
        assert tree.spine_root.test == "a"

    def test_inner_double_slash(self):
        tree = compile_query("/a//b")
        assert tree.spine_root.children[0].axis == "descendant"

    def test_attribute_output(self):
        tree = compile_query("//a/@x")
        assert tree.output.test == "@x"
        assert tree.output.axis == "attribute"
        assert tree.output.is_attribute

    def test_attribute_after_double_slash(self):
        tree = compile_query("//a//@x")
        assert tree.output.axis == "attribute-descendant"

    def test_wildcard_step(self):
        tree = compile_query("/a/*/c")
        assert tree.spine_root.children[0].is_wildcard

    def test_dot_steps_collapse(self):
        tree = compile_query("/a/./b")
        assert tree.spine_root.children[0].test == "b"


class TestPredicateCompilation:
    def test_existence_branch(self):
        tree = compile_query("//a[b/c]/d")
        root = tree.spine_root
        tests = sorted(child.test for child in root.children)
        assert tests == ["b", "d"]
        branch = next(c for c in root.children if c.test == "b")
        assert branch.children[0].test == "c"

    def test_comparison_on_branch_leaf(self):
        tree = compile_query("//a[b/c='v']/d")
        branch = next(c for c in tree.spine_root.children if c.test == "b")
        assert branch.children[0].value_constraint == ("=", "v")

    def test_self_comparison_lands_on_node(self):
        tree = compile_query("//a[.='v']")
        assert tree.spine_root.value_constraint == ("=", "v")

    def test_descendant_predicate_branch(self):
        tree = compile_query("//a[.//b='v']")
        branch = tree.spine_root.children[0]
        assert branch.axis == "descendant"
        assert branch.value_constraint == ("=", "v")

    def test_attribute_predicate(self):
        tree = compile_query("//a[@x>=10]")
        branch = tree.spine_root.children[0]
        assert branch.test == "@x"
        assert branch.value_constraint == (">=", "10")

    def test_paper_example_query(self):
        tree = compile_query("//patient[.//insurance//@coverage>=10000]//SSN")
        root = tree.spine_root
        assert root.test == "patient"
        insurance = next(c for c in root.children if c.test == "insurance")
        assert insurance.children[0].test == "@coverage"
        assert insurance.children[0].value_constraint == (">=", "10000")
        assert tree.output.test == "SSN"


class TestUnsupported:
    @pytest.mark.parametrize(
        "query",
        [
            "a/b",                       # relative
            "/a/b[1]",                   # positional
            "//a/following-sibling::b",  # sibling axis
            "//a/..",                    # reverse axis
            "/@x",                       # attribute at root
        ],
    )
    def test_falls_back(self, query):
        with pytest.raises(UnsupportedQuery):
            compile_query(query)

    def test_nodes_enumeration(self):
        tree = compile_query("//a[b]//c")
        tests = sorted(node.test for node in tree.nodes())
        assert tests == ["a", "b", "c"]
