"""E8 — Theorems 5.1 & 5.2: candidate counts behind the server metadata.

Theorem 5.1: a block with nᵢ leaves shown as kᵢ grouped DSI intervals
admits C(nᵢ−1, kᵢ−1) candidate subtree shapes; blocks multiply.  We
compute (nᵢ, kᵢ) from the *actual hosted NASA system* and report the
product, alongside the paper's (15,5) → 1001 example.

Theorem 5.2: splitting k plaintext values into n ciphertexts admits
C(n−1, k−1) order-preserving partitions; we compute it for every field
plan of the hosted system.
"""

from repro.bench.harness import format_table
from repro.security.counting import (
    structural_candidates,
    value_index_candidates,
)

from conftest import write_result


def _structural_profile(system):
    """(n_leaves, k_intervals) per encryption block of a hosted system."""
    hosted = system.hosted
    per_block_members: dict[int, int] = {}
    per_block_entries: dict[int, int] = {}
    for entry in hosted.structural_index.all_entries():
        if entry.block_id is None:
            continue
        per_block_members[entry.block_id] = per_block_members.get(
            entry.block_id, 0
        ) + len(entry.member_ids)
        per_block_entries[entry.block_id] = (
            per_block_entries.get(entry.block_id, 0) + 1
        )
    return [
        (per_block_members[block_id], per_block_entries[block_id])
        for block_id in sorted(per_block_members)
    ]


def _run(nasa_systems):
    rows = []
    rows.append(
        ["paper example (15,5)", structural_candidates([(15, 5)]), ""]
    )
    for kind in ("top", "sub"):
        profile = _structural_profile(nasa_systems[kind])
        grouped_blocks = [(n, k) for n, k in profile if n > k]
        candidates = structural_candidates(profile)
        rows.append(
            [
                f"NASA {kind} structural index",
                candidates,
                f"{len(profile)} blocks, {len(grouped_blocks)} with grouping",
            ]
        )

    value_rows = []
    system = nasa_systems["opt"]
    for field, plan in sorted(system.hosted.field_plans.items()):
        plaintext_values = len(plan.ordered_values)
        ciphertext_values = sum(
            len(chunks) for chunks in plan.chunk_plan.values()
        )
        value_rows.append(
            [
                field,
                plaintext_values,
                ciphertext_values,
                value_index_candidates(ciphertext_values, plaintext_values),
            ]
        )
    return rows, value_rows


def test_thm5x_index_security(benchmark, nasa_systems):
    rows, value_rows = benchmark.pedantic(
        _run, args=(nasa_systems,), rounds=1, iterations=1
    )
    table = (
        format_table(
            ["case", "candidate databases", "notes"],
            rows,
            "Theorem 5.1 — structural-index candidates",
        )
        + "\n\n"
        + format_table(
            ["field", "k plaintext", "n ciphertext", "C(n-1, k-1)"],
            value_rows,
            "Theorem 5.2 — value-index candidates (NASA opt)",
        )
    )
    write_result("thm5x_index_security", table)

    assert rows[0][1] == 1001
    # The top scheme groups heavily, so its structural candidate count is
    # astronomically large.
    top_candidates = next(r[1] for r in rows if "top" in r[0])
    assert top_candidates > 10**6
    # Every split field satisfies C(n−1,k−1) ≥ k (the Thm 6.1 inequality).
    for _, k, n, candidates in value_rows:
        if n > k:
            assert candidates >= k
