"""Operator views of a running cluster: placement map and shard stats.

Pure rendering — everything here reads coordinator state and formats
text for ``repro cluster`` / ``repro stats``; nothing mutates.
"""

from __future__ import annotations

from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.placement import PlacementMap


def _bound(value: float) -> str:
    if value == float("-inf"):
        return "-inf"
    if value == float("inf"):
        return "+inf"
    return f"{value:g}"


def render_placement(placement: PlacementMap) -> str:
    """The group → shard table plus a per-shard ownership summary."""
    config = placement.config
    lines = [
        f"cluster: {config.shards} shard(s) x {config.replicas} replica(s), "
        f"seed={config.seed}, {placement.group_count()} interval group(s)",
        "",
        f"{'group':>5}  {'interval':<24} {'shard':>5} {'entries':>8} "
        f"{'blocks':>7}",
    ]
    for group in placement.groups:
        span = f"[{_bound(group.low)}, {_bound(group.high)})"
        lines.append(
            f"{group.group_id:>5}  {span:<24} {group.shard:>5} "
            f"{group.entry_count:>8} {len(group.block_ids):>7}"
        )
    lines.append("")
    for shard in range(config.shards):
        groups = placement.groups_of_shard(shard)
        entries = sum(group.entry_count for group in groups)
        blocks = sum(len(group.block_ids) for group in groups)
        lines.append(
            f"shard {shard}: {len(groups)} group(s), {entries} entries, "
            f"{blocks} blocks"
        )
    return "\n".join(lines)


def render_shard_stats(coordinator: ClusterCoordinator) -> str:
    """Per-shard exchange/failover/freshness/traffic table.

    ``demoted``/``resyncs`` count replicas benched for serving stale
    state and later resynced + re-admitted; ``lag`` is the largest
    commit-epoch lag a stale replica of that shard was caught at.
    """
    lines = [
        f"{'shard':>5} {'exchanges':>9} {'failovers':>9} {'degraded':>8} "
        f"{'demoted':>7} {'resyncs':>7} {'lag':>4} "
        f"{'fragments':>9} {'blocks':>7} {'bumps':>6} {'server_s':>9} "
        f"{'wire_s':>9} {'bytes':>10}"
    ]
    for replica_set in coordinator.replica_sets:
        stats = replica_set.stats
        lines.append(
            f"{stats.shard_id:>5} {stats.exchanges:>9} {stats.failovers:>9} "
            f"{stats.degraded:>8} {stats.demotions:>7} {stats.resyncs:>7} "
            f"{stats.max_epoch_lag:>4} {stats.fragments_returned:>9} "
            f"{stats.blocks_shipped:>7} {stats.epoch_bumps:>6} "
            f"{stats.server_s:>9.4f} {stats.transfer_s:>9.4f} "
            f"{replica_set.total_bytes():>10}"
        )
    return "\n".join(lines)
