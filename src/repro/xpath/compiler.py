"""Compilation of XPath queries to pattern trees for server evaluation.

The server evaluates queries structurally, over DSI intervals, by twig
pattern matching (§6.2 steps 1–3).  This module lowers a parsed
:class:`~repro.xpath.ast.LocationPath` into a :class:`PatternTree`: a tree
of :class:`PatternNode` objects connected by ``child`` / ``descendant`` /
``attribute`` edges, with at most one value constraint per node and a single
distinguished *output* node (the query answer node).

Only the fragment the server can process compiles; queries using reverse or
sibling axes, positional predicates, or absolute paths inside predicates
raise :class:`UnsupportedQuery`, and the system falls back to the naive
ship-everything protocol for them (§7.3's baseline) — the client still
answers them correctly, just without server-side pruning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.xpath import ast


class UnsupportedQuery(ValueError):
    """Raised when a query cannot be evaluated as a server-side pattern."""


@dataclass
class PatternNode:
    """One node of the twig pattern."""

    #: element tag, ``@name`` for attributes, or ``*``
    test: str
    #: axis connecting this node to its pattern parent:
    #: "child", "descendant" or "attribute" ("root-child"/"root-descendant"
    #: for the edge from the virtual document node).
    axis: str
    children: list["PatternNode"] = field(default_factory=list)
    #: (op, literal) when a comparison predicate constrains this node
    value_constraint: Optional[tuple[str, str]] = None
    is_output: bool = False

    @property
    def is_attribute(self) -> bool:
        return self.test.startswith("@")

    @property
    def is_wildcard(self) -> bool:
        return self.test in ("*", "@*")

    def walk(self):
        """Yield this node and all pattern descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __str__(self) -> str:
        constraint = ""
        if self.value_constraint:
            op, literal = self.value_constraint
            constraint = f"{op}{literal}"
        marker = "*OUT*" if self.is_output else ""
        return f"{self.axis}::{self.test}{constraint}{marker}"


@dataclass
class PatternTree:
    """A compiled query: pattern roots plus the output node."""

    roots: list[PatternNode]
    output: PatternNode
    #: the first named node on the main spine — the unit the server ships
    spine_root: PatternNode

    def nodes(self) -> list[PatternNode]:
        out: list[PatternNode] = []
        for root in self.roots:
            out.extend(root.walk())
        return out


def compile_pattern(path: ast.LocationPath) -> PatternTree:
    """Compile an absolute location path into a pattern tree."""
    if not path.absolute:
        raise UnsupportedQuery(
            "only absolute queries compile to server patterns"
        )
    spine, output = _compile_steps(path.steps, at_root=True)
    if spine is None or output is None:
        raise UnsupportedQuery("query has no named steps")
    output.is_output = True
    return PatternTree(roots=[spine], output=output, spine_root=spine)


def _compile_steps(
    steps: tuple[ast.Step, ...], at_root: bool
) -> tuple[Optional[PatternNode], Optional[PatternNode]]:
    """Compile a step chain; returns (first pattern node, last pattern node).

    ``at_root`` marks the chain as starting at the virtual document node,
    which prefixes the first edge's axis with ``root-``.
    """
    first: Optional[PatternNode] = None
    last: Optional[PatternNode] = None
    pending_descendant = False

    for step in steps:
        if (
            step.axis == ast.AXIS_DESCENDANT_OR_SELF
            and step.test.is_wildcard
            and not step.predicates
        ):
            pending_descendant = True
            continue
        if step.axis == ast.AXIS_SELF and step.test.is_wildcard and not step.predicates:
            continue  # '.' is a no-op in a forward chain
        if step.axis == ast.AXIS_CHILD:
            axis = "descendant" if pending_descendant else "child"
            test = step.test.name
        elif step.axis == ast.AXIS_DESCENDANT:
            axis = "descendant"
            test = step.test.name
        elif step.axis == ast.AXIS_ATTRIBUTE:
            # '//@x' keeps descendant reach; '/@x' is a direct attribute.
            axis = "attribute-descendant" if pending_descendant else "attribute"
            test = f"@{step.test.name}"
        elif step.axis == ast.AXIS_DESCENDANT_OR_SELF:
            axis = "descendant"
            test = step.test.name
        else:
            raise UnsupportedQuery(
                f"axis {step.axis!r} is not server-evaluable"
            )
        pending_descendant = False

        node = PatternNode(test=test, axis=axis)
        if first is None:
            if at_root:
                if node.axis in ("attribute", "attribute-descendant"):
                    raise UnsupportedQuery("attribute step cannot be first")
                node.axis = f"root-{node.axis}"
            first = node
        else:
            assert last is not None
            last.children.append(node)
        _attach_predicates(node, step.predicates)
        last = node

    if pending_descendant:
        raise UnsupportedQuery("query cannot end with '//'")
    return first, last


def _attach_predicates(
    node: PatternNode, predicates: tuple[ast.Predicate, ...]
) -> None:
    for predicate in predicates:
        expr = predicate.expr
        if isinstance(expr, ast.Position):
            raise UnsupportedQuery("positional predicates are client-only")
        if isinstance(expr, ast.Exists):
            branch = _compile_branch(expr.path)
            node.children.append(branch)
        elif isinstance(expr, ast.Comparison):
            if _is_self_path(expr.path):
                _set_constraint(node, expr)
            else:
                branch = _compile_branch(expr.path)
                leaf = branch
                while leaf.children:
                    leaf = leaf.children[-1]
                _set_constraint(leaf, expr)
                node.children.append(branch)
        else:  # pragma: no cover - parser produces only the above
            raise UnsupportedQuery(f"unsupported predicate {expr!r}")


def _compile_branch(path: ast.LocationPath) -> PatternNode:
    if path.absolute:
        raise UnsupportedQuery("absolute paths inside predicates")
    branch, _ = _compile_steps(path.steps, at_root=False)
    if branch is None:
        raise UnsupportedQuery("empty predicate path")
    return branch


def _set_constraint(node: PatternNode, expr: ast.Comparison) -> None:
    if node.value_constraint is not None:
        raise UnsupportedQuery("multiple value constraints on one node")
    node.value_constraint = (expr.op, expr.literal)


def _is_self_path(path: ast.LocationPath) -> bool:
    return (
        not path.absolute
        and len(path.steps) == 1
        and path.steps[0].axis == ast.AXIS_SELF
        and path.steps[0].test.is_wildcard
        and not path.steps[0].predicates
    )
