"""Tests for server fragment assembly and client post-processing internals."""

import pytest

from repro.core.client import Client, QueryAnswer, canonical_node
from repro.core.encryptor import host_database
from repro.core.scheme import build_scheme
from repro.core.server import Fragment, Server, ServerResponse
from repro.crypto.keyring import ClientKeyring
from repro.xmldb.node import Attribute, Element
from repro.xmldb.parser import parse_fragment
from repro.xmldb.serializer import serialize


@pytest.fixture
def stack(healthcare_doc, healthcare_scs):
    keyring = ClientKeyring(b"s" * 16)
    scheme = build_scheme(healthcare_doc, healthcare_scs, "opt")
    hosted = host_database(healthcare_doc, scheme, keyring)
    return hosted, Server(hosted), Client(keyring, hosted)


class TestServerFragments:
    def test_fragments_carry_ancestor_paths(self, stack):
        hosted, server, client = stack
        response = server.answer(client.translate("//treat/doctor"))
        assert response.fragments
        for fragment in response.fragments:
            tags = [tag for tag, _ in fragment.ancestor_path]
            assert tags[0] == "hospital"
            assert tags[-1] == "treat"

    def test_nested_fragments_deduplicated(self, stack):
        hosted, server, client = stack
        # //patient and //patient/treat both match; shipping patient
        # subsumes treat.
        response = server.answer(client.translate("//patient"))
        roots = [f.ancestor_path for f in response.fragments]
        assert len(response.fragments) == 2  # one per patient, no nesting

    def test_attribute_match_ships_owner(self, stack):
        hosted, server, client = stack
        response = server.answer(client.translate("//insurance//@coverage"))
        # @coverage lives inside insurance blocks -> blocks shipped.
        assert response.blocks_shipped == 2

    def test_no_matches_empty_response(self, stack):
        hosted, server, client = stack
        response = server.answer(client.translate("//unicorn"))
        assert response.fragments == []
        assert response.size_bytes() == 0

    def test_ship_all_is_whole_database(self, stack):
        hosted, server, client = stack
        response = server.ship_all()
        assert response.naive
        assert len(response.fragments) == 1
        assert response.fragments[0].ancestor_path == ()
        assert response.size_bytes() >= server.hosted_size_bytes()

    def test_fragment_size_accounts_path(self):
        fragment = Fragment(
            ancestor_path=(("hospital", 0), ("patient", 1)), xml="<a/>"
        )
        assert fragment.size_bytes() > len("<a/>")


class TestClientDecryption:
    def test_decrypt_fragments_strips_decoys(self, stack):
        hosted, server, client = stack
        response = server.answer(client.translate("//insurance"))
        decrypted = client.decrypt_fragments(response)
        for _, root in decrypted:
            assert "__decoy__" not in serialize(root)
            assert root.tag == "insurance"

    def test_decrypt_root_level_block(self, stack):
        hosted, server, client = stack
        block_id, payload = next(iter(hosted.blocks.items()))
        xml = (
            f'<EncryptedData block-id="{block_id}">{payload.hex()}'
            "</EncryptedData>"
        )
        response = ServerResponse(
            fragments=[Fragment(ancestor_path=(("hospital", 0),), xml=xml)]
        )
        decrypted = client.decrypt_fragments(response)
        assert len(decrypted) == 1
        assert isinstance(decrypted[0][1], Element)
        assert decrypted[0][1].tag != "EncryptedData"

    def test_decrypt_nested_placeholders(self, stack):
        hosted, server, client = stack
        response = server.answer(client.translate("//patient"))
        decrypted = client.decrypt_fragments(response)
        for _, root in decrypted:
            assert "EncryptedData" not in serialize(root)


class TestClientAssembly:
    def test_assemble_merges_shared_ancestors(self, stack):
        hosted, server, client = stack
        response = server.answer(client.translate("//treat/doctor"))
        pruned = client.assemble(client.decrypt_fragments(response))
        # All three treats re-attach under ONE hospital root with their
        # own patient skeletons (two patients).
        assert pruned.root.tag == "hospital"
        patients = [
            child for child in pruned.root.children
            if isinstance(child, Element) and child.tag == "patient"
        ]
        assert len(patients) == 2

    def test_assemble_whole_document_fragment(self, stack):
        hosted, server, client = stack
        pruned = client.assemble(
            client.decrypt_fragments(server.ship_all())
        )
        assert pruned.root.tag == "hospital"
        assert len(list(pruned.root.iter())) > 10

    def test_assemble_empty(self, stack):
        hosted, server, client = stack
        pruned = client.assemble([])
        assert pruned.root.tag == "hospital"
        assert pruned.root.children == []

    def test_post_process_exactness(self, stack, healthcare_doc):
        hosted, server, client = stack
        query = "//treat[disease='diarrhea']/doctor"
        response = server.answer(client.translate(query))
        pruned = client.assemble(client.decrypt_fragments(response))
        answer = client.post_process(query, pruned)
        from repro.xpath.evaluator import evaluate

        expected = sorted(
            canonical_node(n) for n in evaluate(healthcare_doc, query)
        )
        assert answer.canonical() == expected


class TestQueryAnswer:
    def test_canonical_node_forms(self):
        element = parse_fragment("<a>v</a>")
        assert canonical_node(element) == "<a>v</a>"
        attribute = Attribute("x", "1")
        assert canonical_node(attribute) == "@x=1"

    def test_values_skips_non_leaves(self):
        root = parse_fragment("<a><b>v</b><c><d>w</d></c></a>")
        from repro.xmldb.node import Document

        answer = QueryAnswer(
            nodes=[root, root.children[0]],
            pruned_document=Document(root.clone()),
        )
        assert answer.values() == ["v"]  # root has no text value
        assert len(answer) == 2
