"""Tests for the stack-based structural join, cross-checked three ways."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dsi import assign_intervals, build_structural_index
from repro.core.scheme import top_scheme
from repro.core.stack_join import join_children, join_descendants, stack_tree_desc
from repro.crypto.prf import DeterministicRandom
from repro.crypto.vernam import DeterministicTagCipher
from repro.workloads.healthcare import build_healthcare_database
from repro.workloads.nasa import build_nasa_database


def build_index(document, scheme_factory=None):
    document.renumber()
    intervals = assign_intervals(
        document, DeterministicRandom(b"j" * 16, "join")
    )
    if scheme_factory is None:
        block_root_ids = frozenset()
        block_ids = {}
    else:
        scheme = scheme_factory(document)
        block_root_ids = scheme.block_root_ids
        block_ids = {
            root_id: index + 1
            for index, root_id in enumerate(sorted(block_root_ids))
        }
    cipher = DeterministicTagCipher(b"j" * 32)
    return build_structural_index(
        document, intervals, block_root_ids, block_ids, cipher.encrypt_tag
    )


def nested_loop_desc(ancestors, descendants):
    return [
        (a, d)
        for d in descendants
        for a in ancestors
        if a.interval.contains(d.interval)
    ]


class TestStackTreeDesc:
    def test_matches_nested_loop_on_healthcare(self):
        index = build_index(build_healthcare_database())
        patients = index.lookup("patient")
        diseases = index.lookup("disease")
        got = set(
            (id(a), id(d)) for a, d in stack_tree_desc(patients, diseases)
        )
        expected = set(
            (id(a), id(d)) for a, d in nested_loop_desc(patients, diseases)
        )
        assert got == expected
        assert len(got) == 3  # Betty 2 diseases, Matt 1

    def test_no_pairs_for_disjoint_lists(self):
        index = build_index(build_healthcare_database())
        ssn = index.lookup("SSN")
        ages = index.lookup("age")
        assert stack_tree_desc(ssn, ages) == []

    def test_self_join_excludes_self(self):
        index = build_index(build_healthcare_database())
        treats = index.lookup("treat")
        assert stack_tree_desc(treats, treats) == []  # strict containment

    def test_nested_same_tag(self):
        from repro.xmldb.parser import parse_document

        index = build_index(
            parse_document("<r><a><a><a>x</a></a></a></r>")
        )
        entries = index.lookup("a")
        pairs = stack_tree_desc(entries, entries)
        # outer⊃middle, outer⊃inner, middle⊃inner.
        assert len(pairs) == 3

    @given(st.integers(min_value=5, max_value=60))
    @settings(max_examples=15, deadline=None)
    def test_matches_nested_loop_on_generated(self, dataset_count):
        index = build_index(build_nasa_database(dataset_count // 5 + 1, seed=4))
        datasets = index.lookup("dataset")
        lasts = index.lookup("last")
        got = set(
            (id(a), id(d)) for a, d in stack_tree_desc(datasets, lasts)
        )
        expected = set(
            (id(a), id(d)) for a, d in nested_loop_desc(datasets, lasts)
        )
        assert got == expected


class TestSemiJoins:
    def test_join_descendants_prunes_both_sides(self):
        index = build_index(build_healthcare_database())
        insurances = index.lookup("insurance")
        doctors = index.lookup("doctor")
        kept_a, kept_d = join_descendants(insurances, doctors)
        assert kept_a == [] and kept_d == []  # doctors aren't in insurance

        patients = index.lookup("patient")
        kept_a, kept_d = join_descendants(patients, doctors)
        assert len(kept_a) == 2 and len(kept_d) == 3

    def test_join_children_immediate_only(self):
        index = build_index(build_healthcare_database())
        hospital = index.lookup("hospital")
        diseases = index.lookup("disease")
        kept_parents, kept_children = join_children(hospital, diseases)
        assert kept_parents == [] and kept_children == []  # grandchildren

        treats = index.lookup("treat")
        kept_parents, kept_children = join_children(treats, diseases)
        assert len(kept_parents) == 3 and len(kept_children) == 3

    def test_grouped_entries_behave(self):
        """Sibling groups (top scheme) still join correctly."""
        document = build_healthcare_database()
        index = build_index(document, top_scheme)
        cipher = DeterministicTagCipher(b"j" * 32)
        patients = index.lookup(cipher.encrypt_tag("patient"))
        pnames = index.lookup(cipher.encrypt_tag("pname"))
        assert len(patients) == 1  # grouped pair
        kept_parents, kept_children = join_children(patients, pnames)
        assert len(kept_parents) == 1
        assert len(kept_children) == 2
