"""E-hotpath — before/after benchmark for the hot-path overhaul.

The seed implementation spent its time exactly where the paper's Fig. 9
breakdown predicts: client-side block decryption (per-byte spec-path AES)
and repeated server-side fragment assembly.  This benchmark measures the
overhaul head-to-head on the XMark workload:

* **block decryption** — CBC-decrypting every hosted ciphertext block
  with the T-table fast path vs. the seed's FIPS-197 spec path (same
  keys, same bytes, identical plaintexts): must be ≥3× faster;
* **repeated-query latency** — a batch of Qs/Qm queries through
  ``execute_many`` on a warm fast-path system vs. the seed-equivalent
  system (``fast_path=False``: spec AES, no caches): must be ≥5× faster,
  with cache counters proving misses happen only on the cold pass.

Results are written both as a human-readable table under
``benchmarks/results/`` and as machine-readable ``BENCH_hotpath.json``
at the repository root, so the perf trajectory is trackable across PRs.
"""

from __future__ import annotations

import gc
import json
import os
import time

import pytest

from repro.bench.harness import format_table, trimmed_mean
from repro.core.system import SecureXMLSystem
from repro.crypto.keyring import ClientKeyring
from repro.crypto.modes import cbc_decrypt
from repro.perf import counters
from repro.workloads.xmark import xmark_constraints
from repro.xpath.compiler import UnsupportedQuery

from conftest import BENCH_TRIALS, write_result

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_hotpath.json")
MASTER_KEY = b"hotpath-benchmark-master-key-001"

#: accumulated across the tests in this module; rewritten after each
_REPORT: dict[str, object] = {"trials": BENCH_TRIALS}


def _write_report() -> None:
    with open(BENCH_JSON, "w", encoding="utf-8") as handle:
        json.dump(_REPORT, handle, indent=2, sort_keys=True)
        handle.write("\n")


@pytest.fixture(scope="module")
def hotpath_systems(xmark_doc):
    """(fast, seed-equivalent) systems hosting the same XMark document."""
    constraints = xmark_constraints()
    fast = SecureXMLSystem.host(
        xmark_doc, constraints, scheme="opt", master_key=MASTER_KEY
    )
    seed = SecureXMLSystem.host(
        xmark_doc,
        constraints,
        scheme="opt",
        master_key=MASTER_KEY,
        fast_path=False,
    )
    return fast, seed


@pytest.fixture(scope="module")
def hotpath_queries(hotpath_systems, xmark_queries):
    """Server-evaluable Qs+Qm queries (naive fallbacks would swamp the
    measurement with ship-everything transfers)."""
    _, seed = hotpath_systems
    queries = []
    for query_class in ("Qs", "Qm"):
        for query in xmark_queries[query_class]:
            try:
                seed.client.translate(query)  # seed client: no plan cache
            except UnsupportedQuery:
                continue
            if query not in queries:
                queries.append(query)
    assert queries, "workload produced no server-evaluable queries"
    return queries


def test_block_decrypt_throughput(hotpath_systems):
    """T-table CBC decryption is ≥3× the seed spec path, bytes-identical."""
    fast_system, _ = hotpath_systems
    blocks = fast_system.hosted.blocks
    fast_keyring = ClientKeyring(MASTER_KEY, fast_aes=True)
    seed_keyring = ClientKeyring(MASTER_KEY, fast_aes=False)
    total_bytes = sum(len(payload) for payload in blocks.values())
    assert total_bytes > 0

    # Precompute IVs: the subject under test is the cipher itself, not
    # the (memoized) per-block IV derivation.
    ivs = {
        block_id: fast_keyring.block_iv(block_id) for block_id in blocks
    }

    def decrypt_all(keyring: ClientKeyring) -> list[bytes]:
        cipher = keyring.block_cipher
        return [
            cbc_decrypt(cipher, ivs[block_id], payload)
            for block_id, payload in blocks.items()
        ]

    assert decrypt_all(fast_keyring) == decrypt_all(seed_keyring)

    def timed(keyring: ClientKeyring) -> float:
        samples = []
        for _ in range(BENCH_TRIALS):
            started = time.perf_counter()
            decrypt_all(keyring)
            samples.append(time.perf_counter() - started)
        return trimmed_mean(samples)

    fast_s = timed(fast_keyring)
    seed_s = timed(seed_keyring)
    speedup = seed_s / fast_s

    rows = [
        ["seed (spec AES)", seed_s, total_bytes / seed_s / 1e6],
        ["fast (T-table)", fast_s, total_bytes / fast_s / 1e6],
    ]
    write_result(
        "hotpath_decrypt_throughput",
        format_table(
            ["path", "t_decrypt_all", "MB/s"],
            rows,
            f"Hot path — CBC decryption of {len(blocks)} blocks "
            f"({total_bytes} bytes), speedup {speedup:.1f}x",
        ),
    )
    _REPORT["decrypt"] = {
        "block_count": len(blocks),
        "total_bytes": total_bytes,
        "seed_s": seed_s,
        "fast_s": fast_s,
        "seed_mb_per_s": total_bytes / seed_s / 1e6,
        "fast_mb_per_s": total_bytes / fast_s / 1e6,
        "speedup": speedup,
    }
    _write_report()
    assert speedup >= 3.0, f"decrypt speedup {speedup:.2f}x below 3x target"


def test_repeated_query_latency(hotpath_systems, hotpath_queries):
    """Warm repeated queries beat the seed path ≥5×; caches hit only
    after the cold pass and answers stay exact."""
    fast_system, seed_system = hotpath_systems
    queries = hotpath_queries

    # --- seed-equivalent baseline: no caches, spec AES ---
    seed_samples = []
    for _ in range(BENCH_TRIALS):
        started = time.perf_counter()
        seed_answers = seed_system.execute_many(queries)
        seed_samples.append(time.perf_counter() - started)
    seed_s = trimmed_mean(seed_samples)

    # --- fast path, cold pass (first execution ever on this system) ---
    before_cold = counters.snapshot()
    started = time.perf_counter()
    cold_answers = fast_system.execute_many(queries)
    cold_s = time.perf_counter() - started
    cold_delta = counters.delta_since(before_cold)

    # Cold pass: plan-cache misses only (one per distinct query).
    assert cold_delta["plan_cache_hits"] == 0
    assert cold_delta["plan_cache_misses"] == len(queries)
    assert cold_delta["blocks_decrypted"] > 0

    # --- fast path, warm passes ---
    warm_samples = []
    before_warm = counters.snapshot()
    for _ in range(BENCH_TRIALS):
        started = time.perf_counter()
        warm_answers = fast_system.execute_many(queries)
        warm_samples.append(time.perf_counter() - started)
    warm_s = trimmed_mean(warm_samples)
    warm_delta = counters.delta_since(before_warm)

    # Warm passes: hits only — no new translations, serializations or
    # block decryptions anywhere in the batch.  The server's sealed wire
    # cache sits *above* fragment assembly, so warm repeats never even
    # consult the fragment cache (zero traffic, zero misses).
    assert warm_delta["plan_cache_hits"] == len(queries) * BENCH_TRIALS
    assert warm_delta["plan_cache_misses"] == 0
    assert warm_delta["fragment_cache_hits"] == 0
    assert warm_delta["fragment_cache_misses"] == 0
    assert warm_delta["tree_cache_hits"] > 0
    assert warm_delta["tree_cache_misses"] == 0
    assert warm_delta["block_cache_misses"] == 0
    assert warm_delta["blocks_decrypted"] == 0

    # Exactness is untouched by the fast path.
    for seed_answer, cold_answer, warm_answer in zip(
        seed_answers, cold_answers, warm_answers
    ):
        assert seed_answer.canonical() == cold_answer.canonical()
        assert seed_answer.canonical() == warm_answer.canonical()

    speedup_warm = seed_s / warm_s
    speedup_cold = seed_s / cold_s
    rows = [
        ["seed (no caches, spec AES)", seed_s, 1.0],
        ["fast, cold caches", cold_s, speedup_cold],
        ["fast, warm caches", warm_s, speedup_warm],
    ]
    write_result(
        "hotpath_repeated_queries",
        format_table(
            ["path", "t_batch", "speedup"],
            rows,
            f"Hot path — batch of {len(queries)} XMark queries "
            f"(Qs+Qm), repeated-query speedup {speedup_warm:.1f}x",
        ),
    )
    _REPORT["repeated_query"] = {
        "query_count": len(queries),
        "seed_batch_s": seed_s,
        "cold_batch_s": cold_s,
        "warm_batch_s": warm_s,
        "speedup_cold_vs_seed": speedup_cold,
        "speedup_warm_vs_seed": speedup_warm,
    }
    _REPORT["cache"] = {
        "cold": {k: v for k, v in cold_delta.items() if v},
        "warm": {k: v for k, v in warm_delta.items() if v},
        "plan_hit_rate_warm": 1.0,
        "block_hit_rate_warm": counters.hit_rate("block"),
    }
    _write_report()
    assert speedup_warm >= 5.0, (
        f"repeated-query speedup {speedup_warm:.2f}x below 5x target"
    )


def test_parallel_speedup_series(hotpath_systems, hotpath_queries, xmark_doc):
    """Track the parallel engine on the hot-path workload across PRs.

    Emits a ``parallel_speedup`` series (workers → warm batch time and
    speedup over the serial fast path) into ``BENCH_hotpath.json`` so the
    perf trajectory of the parallel engine rides the same report as the
    crypto/cache numbers.  The acceptance floor lives with the dedicated
    sweep in ``test_parallel_engine.py``; this series only records.
    """
    fast_system, _ = hotpath_systems
    queries = hotpath_queries

    def timed_warm(system: SecureXMLSystem) -> float:
        system.execute_many(queries)  # warm every cache/memo layer
        gc.collect()
        gc.disable()  # cyclic node graphs; see test_parallel_engine
        try:
            samples = []
            for _ in range(BENCH_TRIALS):
                started = time.perf_counter()
                system.execute_many(queries)
                samples.append(time.perf_counter() - started)
        finally:
            gc.enable()
        return trimmed_mean(samples)

    serial_s = timed_warm(fast_system)
    series = [
        {"workers": 0, "warm_batch_s": serial_s, "speedup": 1.0}
    ]
    reference = [a.canonical() for a in fast_system.execute_many(queries)]
    for workers in (1, 4):
        system = SecureXMLSystem.host(
            xmark_doc,
            xmark_constraints(),
            scheme="opt",
            master_key=MASTER_KEY,
            parallel=workers,
        )
        try:
            warm_s = timed_warm(system)
            answers = system.execute_many(queries)
            assert [a.canonical() for a in answers] == reference
        finally:
            system.close()
        series.append(
            {
                "workers": workers,
                "warm_batch_s": warm_s,
                "speedup": serial_s / warm_s,
            }
        )

    _REPORT["parallel_speedup"] = {
        "query_count": len(queries),
        "series": series,
    }
    _write_report()
