"""Unit tests for the document tree model."""

import pytest

from repro.xmldb.node import (
    Attribute,
    Document,
    Element,
    EncryptedBlockNode,
    Text,
)


def small_tree() -> Element:
    root = Element("a")
    b = root.append(Element("b"))
    b.append(Text("one"))
    c = root.append(Element("c"))
    c.append(Element("d"))
    root.set_attribute("x", "1")
    return root


class TestStructureMutation:
    def test_append_sets_parent(self):
        root = Element("a")
        child = root.append(Element("b"))
        assert child.parent is root
        assert root.children == [child]

    def test_append_rejects_attached_node(self):
        root = Element("a")
        child = root.append(Element("b"))
        other = Element("c")
        with pytest.raises(ValueError):
            other.append(child)

    def test_insert_at_position(self):
        root = Element("a")
        first = root.append(Element("b"))
        second = Element("c")
        root.insert(0, second)
        assert root.children == [second, first]

    def test_detach_removes_from_parent(self):
        root = small_tree()
        b = root.children[0]
        b.detach()
        assert b.parent is None
        assert all(child is not b for child in root.children)

    def test_detach_root_is_noop(self):
        root = Element("a")
        assert root.detach() is root

    def test_replace_with_swaps_in_place(self):
        root = small_tree()
        old = root.children[0]
        new = Element("z")
        old.replace_with(new)
        assert root.children[0] is new
        assert new.parent is root
        assert old.parent is None

    def test_replace_root_rejected(self):
        root = Element("a")
        with pytest.raises(ValueError):
            root.replace_with(Element("b"))

    def test_replace_with_attached_node_rejected(self):
        root = small_tree()
        other_root = Element("r")
        attached = other_root.append(Element("y"))
        with pytest.raises(ValueError):
            root.children[0].replace_with(attached)


class TestNavigation:
    def test_depth(self):
        root = small_tree()
        d = root.children[1].children[0]
        assert root.depth == 0
        assert d.depth == 2

    def test_ancestors_order(self):
        root = small_tree()
        d = root.children[1].children[0]
        assert [a for a in d.ancestors()] == [root.children[1], root]

    def test_is_ancestor_of(self):
        root = small_tree()
        d = root.children[1].children[0]
        assert root.is_ancestor_of(d)
        assert not d.is_ancestor_of(root)
        assert not root.is_ancestor_of(root)

    def test_iter_preorder(self):
        root = small_tree()
        tags = [n.tag for n in root.iter() if isinstance(n, Element)]
        assert tags == ["a", "b", "c", "d"]

    def test_descendants_excludes_self(self):
        root = small_tree()
        assert root not in list(root.descendants())

    def test_sibling_axes(self):
        root = small_tree()
        b, c = root.children
        assert list(b.following_siblings()) == [c]
        assert list(c.preceding_siblings()) == [b]
        assert list(root.following_siblings()) == []

    def test_child_index(self):
        root = small_tree()
        assert root.children[1].child_index == 1
        assert root.child_index == 0


class TestContent:
    def test_leaf_element_detection(self):
        root = small_tree()
        b, c = root.children
        assert b.is_leaf_element
        assert not c.is_leaf_element
        assert not root.is_leaf_element

    def test_text_value_of_leaf(self):
        root = small_tree()
        assert root.children[0].text_value() == "one"

    def test_text_value_of_internal_is_none(self):
        root = small_tree()
        assert root.text_value() is None

    def test_attribute_value(self):
        root = small_tree()
        attribute = root.attribute("x")
        assert attribute is not None
        assert attribute.text_value() == "1"

    def test_set_attribute_overwrites(self):
        root = Element("a")
        root.set_attribute("k", "1")
        root.set_attribute("k", "2")
        assert len(root.attributes) == 1
        assert root.attribute("k").value == "2"

    def test_remove_attribute(self):
        root = Element("a")
        root.set_attribute("k", "1")
        root.remove_attribute("k")
        assert root.attribute("k") is None

    def test_subtree_size(self):
        root = small_tree()
        assert root.subtree_size() == 5  # a, b, text, c, d (attr not counted)

    def test_empty_tag_rejected(self):
        with pytest.raises(ValueError):
            Element("")
        with pytest.raises(ValueError):
            Attribute("", "v")


class TestClone:
    def test_clone_is_deep_and_detached(self):
        root = small_tree()
        copy = root.clone()
        assert copy is not root
        assert copy.parent is None
        assert copy.children[0].text_value() == "one"
        copy.children[0].children[0].value = "changed"
        assert root.children[0].text_value() == "one"

    def test_clone_preserves_attributes(self):
        root = small_tree()
        copy = root.clone()
        assert copy.attribute("x").value == "1"

    def test_encrypted_block_clone(self):
        node = EncryptedBlockNode(3, b"\x01\x02")
        copy = node.clone()
        assert copy.block_id == 3 and copy.payload == b"\x01\x02"


class TestDocument:
    def test_renumber_assigns_document_order(self):
        doc = Document(small_tree())
        ids = [n.node_id for n in doc.iter_with_attributes()]
        assert ids == sorted(ids)
        assert ids[0] == 0

    def test_node_by_id_roundtrip(self):
        doc = Document(small_tree())
        for node in doc.iter_with_attributes():
            assert doc.node_by_id(node.node_id) is node

    def test_attributes_numbered_after_owner(self):
        doc = Document(small_tree())
        attr = doc.root.attribute("x")
        assert attr.node_id == doc.root.node_id + 1

    def test_size_counts_attributes(self):
        doc = Document(small_tree())
        assert doc.size() == 6  # 5 tree nodes + 1 attribute

    def test_leaves_yields_leaf_elements_and_attributes(self):
        doc = Document(small_tree())
        leaves = list(doc.leaves())
        kinds = {type(leaf).__name__ for leaf in leaves}
        assert kinds == {"Element", "Attribute"}

    def test_document_requires_element_root(self):
        with pytest.raises(TypeError):
            Document(Text("x"))

    def test_clone_preserves_numbering(self):
        doc = Document(small_tree())
        copy = doc.clone()
        original_ids = [n.node_id for n in doc.iter_with_attributes()]
        copy_ids = [n.node_id for n in copy.iter_with_attributes()]
        assert original_ids == copy_ids
