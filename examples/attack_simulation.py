#!/usr/bin/env python3
"""Mount the paper's attacks against naive and secure encryption designs.

Simulates the §3.3 adversary — exact knowledge of every field's value
frequencies — against three designs:

* naive deterministic per-leaf encryption (the §4.1 strawman),
* the decoy construction of Theorem 4.1 (database side),
* the OPESS value index of Theorem 5.2 (metadata side),

and additionally demonstrates the size-based attack failing against
value-permuted candidate databases (Definition 3.1).

Run:  python examples/attack_simulation.py
"""

from collections import Counter

from repro import SecureXMLSystem
from repro.security.attacks import FrequencyAttack, SizeAttack
from repro.security.indistinguishability import (
    breaks_association,
    indistinguishable,
    permute_field_values,
)
from repro.workloads.healthcare import (
    build_healthcare_database,
    healthcare_constraints,
)
from repro.xmldb.serializer import serialized_size
from repro.xmldb.stats import value_frequencies


def naive_histogram(histogram: Counter) -> Counter:
    """Deterministic encryption preserves the frequency profile."""
    return Counter(
        {f"N{i}": count for i, (_, count) in enumerate(sorted(histogram.items()))}
    )


def decoy_histogram(histogram: Counter) -> Counter:
    """Decoy encryption: every ciphertext appears exactly once."""
    return Counter({f"D{i}": 1 for i in range(sum(histogram.values()))})


def main() -> None:
    document = build_healthcare_database()
    constraints = healthcare_constraints()
    system = SecureXMLSystem.host(document, constraints, scheme="opt")

    print("=== Frequency-based attack (§3.3 / §4.1) ===")
    fields = value_frequencies(document)
    for field in sorted(system.hosted.field_plans):
        prior = fields[field]
        attack = FrequencyAttack(prior)

        naive = attack.run(naive_histogram(prior), field)
        decoy = attack.run(decoy_histogram(prior), field)
        observed = system.hosted.value_index.ciphertext_histogram(
            system.hosted.field_tokens[field]
        )
        opess = attack.run(observed, field)

        print(f"\n  field {field!r} (domain {naive.domain_size}):")
        print(f"    naive encryption : cracked {sorted(naive.cracked)} "
              f"({naive.cracked_fraction:.0%})")
        print(f"    decoy encryption : cracked {sorted(decoy.cracked)} "
              f"— success probability {decoy.success_probability}")
        print(f"    OPESS value index: cracked {sorted(opess.cracked)}")

    print("\n=== Size-based attack (Definition 3.1) ===")
    true_size = serialized_size(document)
    attack = SizeAttack(true_size)
    candidates = [
        permute_field_values(document, "doctor", seed=seed)
        for seed in range(6)
    ]
    sizes = [serialized_size(candidate) for candidate in candidates]
    survivors = attack.surviving(sizes)
    print(f"  candidate databases: {len(candidates)} "
          f"(value-permuted over 'doctor')")
    print(f"  surviving the size attack: {len(survivors)} of {len(candidates)}")

    constraint = constraints[3]  # //treat:(/disease, /doctor)
    broken = sum(
        1
        for candidate in candidates
        if breaks_association(document, candidate, constraint)
    )
    consistent = sum(
        1 for candidate in candidates if indistinguishable(document, candidate)
    )
    print(f"  indistinguishable from the true database: {consistent}")
    print(f"  of which break the protected disease↔doctor association: "
          f"{broken}")
    print("\nConclusion: the attacker cannot separate the true database from"
          " candidates that do not contain the protected associations —"
          " the Definition 3.3 security condition, demonstrated.")


if __name__ == "__main__":
    main()
