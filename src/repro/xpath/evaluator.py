"""Naive tree-walk evaluation of XPath over the document model.

This evaluator is the semantics reference for the whole reproduction: the
server-side structural-join pipeline and the client-side post-processor are
both tested against it, and the paper's correctness contract

    Q(D) == Q(decrypt(Qs(encrypt(D))))

is checked with this evaluator supplying both sides.

Semantics follow XPath 1.0 restricted to our fragment:

* the principal node type of every non-attribute axis is *element*, so name
  tests and ``*`` never select text nodes;
* predicates are applied per context node, so positional predicates see the
  sibling-local candidate list;
* comparisons are numeric when both operands parse as floats and string
  (lexicographic) otherwise, matching the behaviour the paper's value
  predicates need (ages, coverages, policy numbers).

Encrypted-block placeholders are opaque: no axis traverses into them, which
models the server's view of a hosted database.
"""

from __future__ import annotations

from typing import Iterable, Union

from repro.xmldb.node import (
    Attribute,
    Document,
    Element,
    EncryptedBlockNode,
    Node,
)
from repro.xpath import ast
from repro.xpath.parser import parse_xpath

PathLike = Union[str, ast.LocationPath]


def evaluate(document: Document, path: PathLike) -> list[Node]:
    """Evaluate an absolute or relative path against a document.

    Relative paths are evaluated with the document root as context node
    (matching how the paper's relative SC paths are used once anchored).
    Results are returned in document order without duplicates.
    """
    parsed = _as_path(path)
    return _evaluate_from(document.root, parsed, is_document_context=True)


def evaluate_on_element(context: Element, path: PathLike) -> list[Node]:
    """Evaluate a (typically relative) path with ``context`` as the anchor.

    Absolute paths are resolved against the tree root that ``context``
    belongs to, per XPath.
    """
    parsed = _as_path(path)
    if parsed.absolute:
        root = context
        while root.parent is not None:
            parent = root.parent
            assert isinstance(parent, Element)
            root = parent
        return _evaluate_from(root, parsed, is_document_context=True)
    return _evaluate_from(context, parsed, is_document_context=False)


def matches(document: Document, path: PathLike, node: Node) -> bool:
    """True if ``node`` is in the answer of ``path`` on ``document``."""
    return any(result is node for result in evaluate(document, path))


def _as_path(path: PathLike) -> ast.LocationPath:
    if isinstance(path, ast.LocationPath):
        return path
    return parse_xpath(path)


def _evaluate_from(
    anchor: Element, path: ast.LocationPath, is_document_context: bool
) -> list[Node]:
    """Run the step pipeline starting from a single anchor node.

    For an absolute path the anchor is the root element and the *document
    node* is the initial context, so ``/hospital`` selects the root itself.
    We model the document node implicitly: the first child-axis step of an
    absolute path tests the root element.
    """
    if path.absolute and is_document_context:
        context: list[Node] = [_DocumentContext(anchor)]
    else:
        context = [anchor]

    for step in path.steps:
        context = _apply_step(context, step)
        if not context:
            break
    return _document_order(context)


class _DocumentContext:
    """Stand-in for the XPath document node above the root element."""

    __slots__ = ("root",)

    def __init__(self, root: Element) -> None:
        self.root = root


def _apply_step(context: list[Node], step: ast.Step) -> list[Node]:
    output: list[Node] = []
    seen: set[int] = set()
    for node in context:
        candidates = [
            candidate
            for candidate in _axis_nodes(node, step.axis)
            if _test_matches(candidate, step)
        ]
        for predicate in step.predicates:
            candidates = _filter_predicate(candidates, predicate)
        for candidate in candidates:
            key = id(candidate)
            if key not in seen:
                seen.add(key)
                output.append(candidate)
    return output


def _axis_nodes(node: Node, axis: str) -> Iterable[Node]:
    if isinstance(node, _DocumentContext):
        # The virtual document node has exactly one child: the root element.
        if axis == ast.AXIS_CHILD:
            return [node.root]
        if axis in (ast.AXIS_DESCENDANT, ast.AXIS_DESCENDANT_OR_SELF):
            return list(node.root.iter())
        if axis == ast.AXIS_SELF:
            return [node]
        return []

    if isinstance(node, EncryptedBlockNode):
        # Opaque: nothing inside an encrypted block is addressable.
        if axis == ast.AXIS_SELF:
            return [node]
        if axis == ast.AXIS_PARENT:
            return [node.parent] if node.parent is not None else []
        if axis == ast.AXIS_ANCESTOR:
            return list(node.ancestors())
        return []

    if axis == ast.AXIS_CHILD:
        return list(node.children)
    if axis == ast.AXIS_DESCENDANT:
        return list(node.descendants())
    if axis == ast.AXIS_DESCENDANT_OR_SELF:
        return list(node.iter())
    if axis == ast.AXIS_SELF:
        return [node]
    if axis == ast.AXIS_PARENT:
        return [node.parent] if node.parent is not None else []
    if axis == ast.AXIS_ANCESTOR:
        return list(node.ancestors())
    if axis == ast.AXIS_ATTRIBUTE:
        if isinstance(node, Element):
            return list(node.attributes)
        return []
    if axis == ast.AXIS_FOLLOWING_SIBLING:
        return list(node.following_siblings())
    if axis == ast.AXIS_PRECEDING_SIBLING:
        return list(node.preceding_siblings())
    if axis == ast.AXIS_ANCESTOR_OR_SELF:
        return [node] + list(node.ancestors())
    if axis == ast.AXIS_FOLLOWING:
        return _following_nodes(node)
    if axis == ast.AXIS_PRECEDING:
        return _preceding_nodes(node)
    if axis == ast.AXIS_NAMESPACE:
        # This data model carries no namespace declarations, so the
        # thirteenth axis is well-defined and empty everywhere.
        return []
    raise ValueError(f"unsupported axis {axis!r}")


def _following_nodes(node: Node) -> list[Node]:
    """XPath ``following``: everything after the subtree, in document order.

    Equivalently (the paper's §5.1 formulation): nodes whose DSI interval
    starts after this node's interval ends.  Computed here structurally:
    the subtrees of all following siblings of the node and of each of its
    ancestors.
    """
    out: list[Node] = []
    current: Node | None = node
    while current is not None:
        for sibling in current.following_siblings():
            out.extend(sibling.iter())
        current = current.parent
    return out


def _preceding_nodes(node: Node) -> list[Node]:
    """XPath ``preceding``: everything before the subtree, minus ancestors."""
    out: list[Node] = []
    chain: list[Node] = [node] + list(node.ancestors())
    for current in reversed(chain):
        for sibling in current.preceding_siblings():
            out.extend(sibling.iter())
    return out


def _test_matches(node: Node, step: ast.Step) -> bool:
    if step.axis == ast.AXIS_ATTRIBUTE:
        if not isinstance(node, Attribute):
            return False
        return step.test.is_wildcard or node.name == step.test.name
    if step.axis in (ast.AXIS_SELF, ast.AXIS_PARENT) and step.test.is_wildcard:
        # '.' and '..' keep whatever node kind the context had.
        return True
    if not isinstance(node, Element):
        return False
    return step.test.is_wildcard or node.tag == step.test.name


def _filter_predicate(
    candidates: list[Node], predicate: ast.Predicate
) -> list[Node]:
    expr = predicate.expr
    if isinstance(expr, ast.Position):
        if expr.is_last:
            return [candidates[-1]] if candidates else []
        index = expr.index - 1
        return [candidates[index]] if 0 <= index < len(candidates) else []
    if isinstance(expr, ast.Exists):
        return [node for node in candidates if _predicate_nodes(node, expr.path)]
    if isinstance(expr, ast.Comparison):
        return [
            node
            for node in candidates
            if _comparison_holds(node, expr)
        ]
    raise TypeError(f"unknown predicate expression {expr!r}")


def _predicate_nodes(node: Node, path: ast.LocationPath) -> list[Node]:
    if isinstance(node, Element):
        return evaluate_on_element(node, path)
    if isinstance(node, Attribute) and not path.steps:
        return [node]
    return []


def _comparison_holds(node: Node, comparison: ast.Comparison) -> bool:
    # The path in a comparison may be empty-ish ('.'), addressing the
    # context node's own value.
    if _is_self_path(comparison.path):
        targets: list[Node] = [node]
    else:
        targets = _predicate_nodes(node, comparison.path)
    for target in targets:
        value = target.text_value()
        if value is None:
            continue
        if compare_values(value, comparison.op, comparison.literal):
            return True
    return False


def _is_self_path(path: ast.LocationPath) -> bool:
    return (
        not path.absolute
        and len(path.steps) == 1
        and path.steps[0].axis == ast.AXIS_SELF
        and path.steps[0].test.is_wildcard
        and not path.steps[0].predicates
    )


def compare_values(left: str, op: str, right: str) -> bool:
    """Compare two values with XPath-flavoured coercion.

    Numeric comparison when both sides parse as floats; string comparison
    otherwise.  Exposed for reuse by the server-side value-index scan.
    """
    left_num = _to_number(left)
    right_num = _to_number(right)
    if left_num is not None and right_num is not None:
        return _apply_op(left_num, op, right_num)
    return _apply_op(left, op, right)


def _to_number(value: str) -> float | None:
    try:
        return float(value)
    except ValueError:
        return None


def _apply_op(left, op: str, right) -> bool:
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise ValueError(f"unsupported operator {op!r}")


def _document_order(nodes: list[Node]) -> list[Node]:
    """Sort a node list into document order when ids are available.

    Nodes from un-numbered fragments (node_id == -1) keep their discovery
    order, which is already close to document order for our pipelines.
    """
    if any(isinstance(node, _DocumentContext) for node in nodes):
        nodes = [
            node.root if isinstance(node, _DocumentContext) else node
            for node in nodes
        ]
    if all(node.node_id >= 0 for node in nodes):
        return sorted(nodes, key=lambda node: node.node_id)
    return nodes
