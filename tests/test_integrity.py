"""Unit tests for the integrity envelope and the block MAC tags."""

import pytest

from repro.core.integrity import (
    MAGIC,
    OVERHEAD,
    TAG_BYTES,
    IntegrityError,
    TamperedRequestError,
    TamperedResponseError,
    seal,
    unseal,
)
from repro.core.system import SecureXMLSystem
from repro.crypto.hmac import derive_key, hmac_sha256, hmac_sha256_fast
from repro.crypto.keyring import ClientKeyring

KEY = derive_key(b"integrity-test-master", "unit")


class TestFastHmac:
    """hmac_sha256_fast must be the *same function* as the from-scratch one."""

    @pytest.mark.parametrize("size", [0, 1, 55, 56, 63, 64, 65, 1000])
    def test_byte_identical_across_message_sizes(self, size):
        message = bytes(i % 251 for i in range(size))
        assert hmac_sha256_fast(KEY, message) == hmac_sha256(KEY, message)

    @pytest.mark.parametrize("key_size", [0, 1, 32, 64, 65, 200])
    def test_byte_identical_across_key_sizes(self, key_size):
        key = bytes(range(key_size % 256))[:key_size].ljust(key_size, b"k")
        assert hmac_sha256_fast(key, b"msg") == hmac_sha256(key, b"msg")

    def test_rejects_non_bytes(self):
        with pytest.raises(TypeError):
            hmac_sha256_fast("string", b"m")
        with pytest.raises(TypeError):
            hmac_sha256_fast(KEY, "m")


class TestEnvelope:
    def test_round_trip(self):
        payload = b"the payload"
        blob = seal(KEY, payload)
        assert blob.startswith(MAGIC)
        assert len(blob) == OVERHEAD + len(payload)
        assert unseal(KEY, blob) == payload

    def test_empty_payload_round_trips(self):
        assert unseal(KEY, seal(KEY, b"")) == b""

    def test_every_byte_flip_detected(self):
        """Byte-level sweep: no single-byte tamper survives verification."""
        payload = b"short but structured: {\"a\": 1}"
        blob = seal(KEY, payload)
        for offset in range(len(blob)):
            for xor in (0x01, 0x80, 0xFF):
                mutated = bytearray(blob)
                mutated[offset] ^= xor
                with pytest.raises(TamperedResponseError):
                    unseal(KEY, bytes(mutated))

    def test_every_truncation_detected(self):
        blob = seal(KEY, b"payload under test")
        for length in range(len(blob)):
            with pytest.raises(TamperedResponseError):
                unseal(KEY, blob[:length])

    def test_extension_detected(self):
        blob = seal(KEY, b"payload")
        with pytest.raises(TamperedResponseError):
            unseal(KEY, blob + b"x")

    def test_wrong_key_detected(self):
        blob = seal(KEY, b"payload")
        other = derive_key(b"other-master", "unit")
        with pytest.raises(TamperedResponseError):
            unseal(other, blob)

    def test_error_type_is_selectable(self):
        with pytest.raises(TamperedRequestError):
            unseal(KEY, b"garbage", error=TamperedRequestError)

    def test_typed_errors_share_a_base(self):
        assert issubclass(TamperedResponseError, IntegrityError)
        assert issubclass(TamperedRequestError, IntegrityError)


class TestKeyDerivation:
    def test_session_keys_are_distinct_and_deterministic(self):
        keyring = ClientKeyring(b"master-key-for-session-tests!!!!")
        request_key, response_key = keyring.session_keys()
        assert request_key != response_key
        assert len(request_key) == TAG_BYTES
        again = ClientKeyring(b"master-key-for-session-tests!!!!")
        assert again.session_keys() == (request_key, response_key)

    def test_block_mac_key_differs_from_session_keys(self):
        keyring = ClientKeyring(b"master-key-for-session-tests!!!!")
        assert keyring.block_mac_key not in keyring.session_keys()

    def test_block_tag_binds_block_id(self):
        """The tag commits to the id: swapping two blocks' payloads fails."""
        keyring = ClientKeyring(b"master-key-for-session-tests!!!!")
        payload = b"ciphertext bytes"
        assert keyring.block_tag(1, payload) != keyring.block_tag(2, payload)

    def test_block_tag_binds_payload(self):
        keyring = ClientKeyring(b"master-key-for-session-tests!!!!")
        assert keyring.block_tag(1, b"aaaa") != keyring.block_tag(1, b"aaab")


class TestBlockTagsEndToEnd:
    @pytest.fixture
    def system(self, healthcare_doc, healthcare_scs):
        return SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="opt"
        )

    def test_hosting_tags_every_block(self, system):
        hosted = system.hosted
        assert set(hosted.block_tags) == set(hosted.blocks)
        for block_id, payload in hosted.blocks.items():
            assert hosted.block_tags[block_id] == (
                system._keyring.block_tag(block_id, payload)
            )

    def test_server_side_ciphertext_swap_detected(self, system):
        """An adversarial server swapping two blocks' payloads is caught."""
        hosted = system.hosted
        ids = sorted(hosted.blocks)[:2]
        first, second = ids[0], ids[1]
        hosted.placeholders[first].payload, hosted.placeholders[second].payload = (
            hosted.placeholders[second].payload,
            hosted.placeholders[first].payload,
        )
        hosted.blocks[first], hosted.blocks[second] = (
            hosted.blocks[second],
            hosted.blocks[first],
        )
        hosted.bump_epoch()  # server republishes its mutated state
        with pytest.raises(TamperedResponseError):
            system.naive_query("//SSN")

    def test_server_side_bit_flip_detected(self, system):
        hosted = system.hosted
        block_id = sorted(hosted.blocks)[0]
        mutated = bytearray(hosted.placeholders[block_id].payload)
        mutated[len(mutated) // 2] ^= 0x01
        hosted.placeholders[block_id].payload = bytes(mutated)
        hosted.blocks[block_id] = bytes(mutated)
        hosted.bump_epoch()
        with pytest.raises(TamperedResponseError):
            system.naive_query("//SSN")

    def test_update_refreshes_tags(self, system):
        system.update_value("//patient[pname='Betty']/SSN", "999999")
        hosted = system.hosted
        assert set(hosted.block_tags) == set(hosted.blocks)
        for block_id, payload in hosted.blocks.items():
            assert hosted.block_tags[block_id] == (
                system._keyring.block_tag(block_id, payload)
            )
        answer = system.query("//patient[SSN='999999']/pname")
        assert answer.values() == ["Betty"]
