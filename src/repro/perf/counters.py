"""Global performance-counter registry.

One process-wide :class:`PerfCounters` instance (:data:`counters`) is
incremented from the hot paths themselves — the AES key schedule, the CBC
decryptor, and every cache layer.  Counters are plain integer attributes,
so the overhead per event is one attribute increment; nothing here
imports the rest of the package (the crypto layer imports *us*).
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class PerfCounters:
    """Cumulative operation and cache-traffic counts.

    ``*_hits`` / ``*_misses`` pairs cover one cache layer each:

    * ``plan`` — the client's translated-query plan cache;
    * ``fragment`` — the server's serialized-fragment cache;
    * ``block`` — the client's decrypted-block cache;
    * ``tree`` — the client's fully decrypted fragment-tree cache
      (parse + block decryption + decoy stripping, one level above the
      block cache);
    * ``interval`` — the structural index's per-tag sorted low-bound
      arrays used by descendant joins.
    """

    key_expansions: int = 0
    blocks_encrypted: int = 0
    blocks_decrypted: int = 0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    fragment_cache_hits: int = 0
    fragment_cache_misses: int = 0
    block_cache_hits: int = 0
    block_cache_misses: int = 0
    tree_cache_hits: int = 0
    tree_cache_misses: int = 0
    interval_cache_hits: int = 0
    interval_cache_misses: int = 0
    epoch_invalidations: int = 0
    # --- untrusted-server hardening (fault channel / integrity / retry) ---
    faults_dropped: int = 0
    faults_corrupted: int = 0
    faults_truncated: int = 0
    faults_duplicated: int = 0
    faults_delayed: int = 0
    query_retries: int = 0
    integrity_failures: int = 0
    naive_fallbacks: int = 0
    queries_failed: int = 0

    def snapshot(self) -> dict[str, int]:
        """Current values as a plain dict (safe to hold across resets)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def delta_since(self, before: dict[str, int]) -> dict[str, int]:
        """Per-counter difference against an earlier :meth:`snapshot`."""
        return {
            name: value - before.get(name, 0)
            for name, value in self.snapshot().items()
        }

    def reset(self) -> None:
        """Zero every counter (benchmark isolation)."""
        for f in fields(self):
            setattr(self, f.name, 0)

    def hit_rate(self, cache: str) -> float:
        """Hit rate in [0, 1] for one cache layer (0.0 when untouched)."""
        hits = getattr(self, f"{cache}_cache_hits")
        misses = getattr(self, f"{cache}_cache_misses")
        total = hits + misses
        return hits / total if total else 0.0


#: The process-wide registry every hot path increments.
counters = PerfCounters()
