"""Tests for candidate counting (Theorems 4.1, 5.1, 5.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.security.counting import (
    compositions,
    database_candidates,
    paper_examples,
    structural_candidates,
    value_index_candidates,
)


class TestPaperNumbers:
    def test_quoted_examples(self):
        examples = paper_examples()
        # §4.1: (3+4+5)! / (3!·4!·5!) = 27720.
        assert examples["thm41_345"] == 27720
        # §5.1 and §5.2: C(14, 4) = 1001.
        assert examples["thm51_15_5"] == 1001
        assert examples["thm52_15_5"] == 1001
        # Figure 5 text: 7 leaves in 3 intervals -> 15 assignments.
        assert examples["thm51_7_3"] == 15


class TestDatabaseCandidates:
    def test_single_value(self):
        assert database_candidates([5]) == 1

    def test_two_values(self):
        # C(5,2) = 10 ways to interleave 2+3 occurrences.
        assert database_candidates([2, 3]) == 10

    def test_positive_required(self):
        with pytest.raises(ValueError):
            database_candidates([3, 0])

    @given(st.lists(st.integers(1, 8), min_size=1, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_grows_with_extra_value(self, frequencies):
        base = database_candidates(frequencies)
        extended = database_candidates(frequencies + [2])
        assert extended >= base

    def test_exponential_growth_in_total(self):
        """The security margin grows explosively with the domain."""
        small = database_candidates([2] * 3)
        large = database_candidates([2] * 10)
        assert large > 1000 * small


class TestStructuralCandidates:
    def test_single_interval_single_candidate(self):
        assert structural_candidates([(7, 1)]) == 1

    def test_fully_split_single_candidate(self):
        assert structural_candidates([(7, 7)]) == 1

    def test_blocks_multiply(self):
        single = structural_candidates([(7, 3)])
        assert structural_candidates([(7, 3), (7, 3)]) == single**2

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            structural_candidates([(3, 4)])
        with pytest.raises(ValueError):
            structural_candidates([(3, 0)])

    @given(
        st.integers(min_value=2, max_value=10),
        st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=40, deadline=None)
    def test_closed_form_matches_enumeration(self, leaves, intervals):
        """C(n−1, k−1) really counts the compositions of Figure 5."""
        if intervals > leaves:
            intervals = leaves
        closed = structural_candidates([(leaves, intervals)])
        assert closed == len(compositions(leaves, intervals))


class TestValueIndexCandidates:
    def test_no_split_single_candidate(self):
        assert value_index_candidates(5, 5) == 1

    def test_all_merged_single_candidate(self):
        assert value_index_candidates(9, 1) == 1

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            value_index_candidates(3, 4)
        with pytest.raises(ValueError):
            value_index_candidates(3, 0)

    @given(
        st.integers(min_value=2, max_value=40),
        st.integers(min_value=2, max_value=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_theorem_61_inequality(self, n, k):
        """C(n−1, k−1) ≥ k whenever n > k: the belief never increases."""
        if k >= n:
            k = n - 1
        if k < 2:
            k = 2
        if n <= k:
            n = k + 1
        assert value_index_candidates(n, k) >= k


class TestCompositions:
    def test_seven_into_three(self):
        result = compositions(7, 3)
        assert len(result) == 15
        assert (1, 1, 5) in result
        assert (2, 3, 2) in result
        assert all(sum(c) == 7 for c in result)

    def test_degenerate(self):
        assert compositions(4, 1) == [(4,)]
        assert compositions(0, 1) == []
