"""XMark-like synthetic auction-site dataset (the paper's synthetic data).

The paper used the XMark benchmark generator; its experiments depend only
on document shape and on the tags in the Figure 8(a) constraint graph
(``name``, ``emailaddress``, ``income``, ``creditcard``, ``address``,
``profile``, ``age``).  This generator reproduces that shape with a seeded
deterministic RNG: a ``site`` with ``people/person`` records carrying
exactly those fields plus auction noise (``open_auctions``), with skewed
value distributions so OPESS has something to flatten.
"""

from __future__ import annotations

from repro.core.constraints import SecurityConstraint, parse_constraints
from repro.crypto.prf import DeterministicRandom
from repro.xmldb.builder import TreeBuilder
from repro.xmldb.node import Document

#: Association SCs matching the Figure 8(a) constraint-graph shape: every
#: edge touches ``name`` or ``creditcard``, so the optimal cover is
#: {name, creditcard} — the cover the paper reports for its opt scheme.
XMARK_CONSTRAINTS = [
    "//person:(/name, /creditcard)",
    "//person:(/creditcard, //income)",
    "//person:(/name, /address)",
    "//person:(/name, //age)",
    "//person:(/emailaddress, /creditcard)",
]

_FIRST_NAMES = [
    "Alice", "Bob", "Carol", "Dave", "Erin", "Frank", "Grace", "Heidi",
    "Ivan", "Judy", "Mallory", "Niaj", "Olivia", "Peggy", "Rupert", "Sybil",
]
_LAST_NAMES = [
    "Anders", "Baker", "Chen", "Diaz", "Engel", "Fox", "Gupta", "Hughes",
    "Ito", "Jones", "Khan", "Lopez", "Meyer", "Novak", "Okafor", "Park",
]
_CITIES = [
    "Seoul", "Vancouver", "Lisbon", "Osaka", "Nairobi", "Lima",
    "Tampere", "Graz",
]
_COUNTRIES = ["KR", "CA", "PT", "JP", "KE", "PE", "FI", "AT"]
_INTERESTS = ["sports", "music", "books", "travel", "cooking", "gaming"]


def build_xmark_database(
    person_count: int = 200, seed: int = 1
) -> Document:
    """Generate a deterministic XMark-like document.

    ``person_count`` scales the document (~17 nodes per person plus
    auction noise); the same (count, seed) pair always yields the same
    tree.
    """
    rng = DeterministicRandom(
        seed.to_bytes(8, "big").rjust(16, b"\x00"), "xmark"
    )
    builder = TreeBuilder("site")
    with builder.element("people"):
        for index in range(person_count):
            _add_person(builder, rng, index)
    with builder.element("open_auctions"):
        for index in range(max(1, person_count // 4)):
            with builder.element("auction"):
                builder.leaf("itemref", f"item{rng.randint(0, person_count)}")
                builder.leaf("current", str(rng.randint(1, 500)))
                builder.leaf("reserve", str(rng.randint(1, 1000)))
    return builder.document()


def _add_person(
    builder: TreeBuilder, rng: DeterministicRandom, index: int
) -> None:
    first = rng.choice(_FIRST_NAMES)
    last = rng.choice(_LAST_NAMES)
    with builder.element("person", id=f"person{index}"):
        builder.leaf("name", f"{first} {last}")
        builder.leaf(
            "emailaddress", f"{first.lower()}.{last.lower()}@example.com"
        )
        # Skewed income: a few salary bands dominate (Zipf-ish).
        band = rng.randint(1, 10)
        income = 30_000 if band <= 5 else 55_000 if band <= 8 else 120_000
        income += rng.randint(0, 4) * 1_000
        with builder.element("address"):
            builder.leaf("street", f"{rng.randint(1, 99)} Main St")
            builder.leaf("city", rng.choice(_CITIES))
            builder.leaf("country", rng.choice(_COUNTRIES))
        builder.leaf(
            "creditcard",
            " ".join(str(rng.randint(1000, 9999)) for _ in range(4)),
        )
        with builder.element("profile"):
            builder.leaf("income", str(income))
            builder.leaf("age", str(18 + rng.randint(0, 60)))
            builder.leaf("interest", rng.choice(_INTERESTS))


def xmark_constraints() -> list[SecurityConstraint]:
    """The Figure 8(a)-shaped SC set."""
    return parse_constraints(XMARK_CONSTRAINTS)
