"""Independent enforcement checking for encryption schemes (Theorem 4.1).

The scheme constructors in :mod:`repro.core.scheme` enforce the security
constraints *by construction*; this module checks enforcement for an
**arbitrary** scheme — including hand-built ones — against the Theorem 4.1
conditions:

(i)   every node bound by a node-type SC lies in an encryption block;
(ii)  for every association SC, in the context of each binding, at least
      one endpoint side's nodes all lie in encryption blocks;
(iii) (checked at hosting time, reported here structurally) encrypted
      leaves receive decoys — guaranteed by the encryptor whenever
      ``secure=True``, and flagged as a violation for strawman hostings.

Owners can run :func:`check_enforcement` before shipping a hosting built
with a custom scheme, and the property-based test suite uses it as the
oracle that the built-in constructors never under-encrypt.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.constraints import SecurityConstraint
from repro.core.scheme import EncryptionScheme
from repro.xmldb.node import Document, Element, Node


@dataclass(frozen=True)
class Violation:
    """One enforcement failure."""

    constraint: str
    reason: str

    def __str__(self) -> str:
        return f"{self.constraint}: {self.reason}"


def _covered_ids(document: Document, scheme: EncryptionScheme) -> set[int]:
    """Node ids (elements + attributes) inside some encryption block."""
    covered: set[int] = set()
    for root in scheme.block_roots(document):
        for node in root.iter():
            covered.add(node.node_id)
            if isinstance(node, Element):
                for attribute in node.attributes:
                    covered.add(attribute.node_id)
    return covered


def check_enforcement(
    document: Document,
    constraints: list[SecurityConstraint],
    scheme: EncryptionScheme,
    secure_hosting: bool = True,
) -> list[Violation]:
    """Return every Theorem 4.1 violation (empty list = scheme enforces)."""
    violations: list[Violation] = []
    covered = _covered_ids(document, scheme)

    for constraint in constraints:
        if not constraint.is_association:
            for node in constraint.context_nodes(document):
                if node.node_id not in covered:
                    violations.append(
                        Violation(
                            str(constraint),
                            f"node-type target <{node.tag}> "
                            f"(id {node.node_id}) is not encrypted",
                        )
                    )
            continue

        for context in constraint.context_nodes(document):
            left = _binding_ids(context, constraint, 1)
            right = _binding_ids(context, constraint, 2)
            if not left or not right:
                continue  # no association materializes in this context
            left_hidden = left <= covered
            right_hidden = right <= covered
            if not (left_hidden or right_hidden):
                violations.append(
                    Violation(
                        str(constraint),
                        "association exposed in context "
                        f"<{context.tag}> (id {context.node_id}): "
                        "neither endpoint side is fully encrypted",
                    )
                )

    if not secure_hosting and scheme.block_root_ids:
        violations.append(
            Violation(
                "(hosting mode)",
                "secure=False hosting omits decoys: Theorem 4.1 "
                "condition (iii) is violated",
            )
        )
    return violations


def _binding_ids(
    context: Element, constraint: SecurityConstraint, which: int
) -> set[int]:
    from repro.xpath.evaluator import evaluate_on_element

    path = constraint.q1 if which == 1 else constraint.q2
    assert path is not None
    ids: set[int] = set()
    for node in evaluate_on_element(context, path):
        ids.add(node.node_id)
    return ids


def assert_enforced(
    document: Document,
    constraints: list[SecurityConstraint],
    scheme: EncryptionScheme,
) -> None:
    """Raise ValueError with a readable report if enforcement fails."""
    violations = check_enforcement(document, constraints, scheme)
    if violations:
        details = "\n  ".join(str(violation) for violation in violations)
        raise ValueError(
            f"scheme does not enforce the security constraints:\n  {details}"
        )
