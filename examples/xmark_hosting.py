#!/usr/bin/env python3
"""Compare the four encryption-scheme granularities on an XMark workload.

Hosts the same XMark-like auction database under top / sub / app / opt and
reports, per scheme: hosting cost, hosted size, and the per-stage query
costs for the three query classes of §7.1 — a miniature of the paper's
whole evaluation section on one screen.

Run:  python examples/xmark_hosting.py [person_count]
"""

import sys

from repro import SecureXMLSystem
from repro.bench.harness import format_table, run_query_class
from repro.workloads.queries import QueryWorkload
from repro.workloads.xmark import build_xmark_database, xmark_constraints

SCHEMES = ("top", "sub", "app", "opt")


def main() -> None:
    person_count = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    document = build_xmark_database(person_count=person_count, seed=17)
    constraints = xmark_constraints()
    workload = QueryWorkload(document, seed=18, per_class=5).by_class()

    print(f"XMark-like database: {document.size()} nodes, "
          f"{person_count} persons\n")

    systems = {}
    hosting_rows = []
    for kind in SCHEMES:
        system = SecureXMLSystem.host(document, constraints, scheme=kind)
        systems[kind] = system
        trace = system.hosting_trace
        hosting_rows.append(
            [kind, trace.encrypt_s, trace.hosted_bytes, trace.block_count,
             ",".join(sorted(system.scheme.covered_fields))]
        )
    print(format_table(
        ["scheme", "host time (s)", "hosted bytes", "blocks", "cover"],
        hosting_rows,
        "Hosting cost per scheme",
    ))

    for query_class, queries in workload.items():
        rows = []
        for kind in SCHEMES:
            result = run_query_class(systems[kind], query_class, queries)
            rows.append(
                [kind, result.server_s, result.decrypt_s,
                 result.postprocess_s, result.total_s]
            )
        print()
        print(format_table(
            ["scheme", "t_server", "t_decrypt", "t_post", "t_total"],
            rows,
            f"Query class {query_class} ({len(queries)} queries, "
            "trimmed mean seconds)",
        ))

    print("\nExpected shape (paper §7.4): costs fall from top to opt, and"
          " the win grows for leaf-level queries.")


if __name__ == "__main__":
    main()
