"""Property-based OPESS validation on random histograms and predicates.

For arbitrary value histograms, the whole OPESS pipeline — plan, split,
encrypt, index, translate, scan — must satisfy the paper's contracts:
non-straddling order (*), bounded flatness, and sound-superset predicate
translation against a brute-force oracle.
"""

from collections import Counter

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.btree import BTree
from repro.core.opess import (
    build_field_plan,
    build_value_index,
    chunk_ciphertexts,
    translate_predicate,
)
from repro.crypto.ope import OrderPreservingEncryption
from repro.crypto.prf import DeterministicRandom
from repro.xpath.evaluator import compare_values

_OPE = OrderPreservingEncryption(b"prop-ope-key-16b")


def _stream(seed: int) -> DeterministicRandom:
    return DeterministicRandom(seed.to_bytes(16, "big"), "prop")


_numeric_histograms = st.dictionaries(
    st.integers(min_value=-500, max_value=500).map(str),
    st.integers(min_value=1, max_value=40),
    min_size=1,
    max_size=8,
)

_categorical_histograms = st.dictionaries(
    st.from_regex(r"[a-z]{2,6}", fullmatch=True),
    st.integers(min_value=1, max_value=25),
    min_size=1,
    max_size=6,
)


class TestPlanProperties:
    @given(_numeric_histograms, st.integers(0, 2**32))
    @settings(max_examples=40, deadline=None)
    def test_non_straddling_order(self, histogram, seed):
        plan = build_field_plan("f", Counter(histogram), _stream(seed), _OPE)
        all_ciphertexts = []
        for value in plan.ordered_values:
            chunks = chunk_ciphertexts(plan, value, _OPE)
            assert chunks == sorted(chunks)
            all_ciphertexts.extend(chunks)
        # Requirement (*): ciphertexts of different plaintexts never
        # interleave.
        assert all_ciphertexts == sorted(all_ciphertexts)
        assert len(set(all_ciphertexts)) == len(all_ciphertexts)

    @given(_numeric_histograms, st.integers(0, 2**32))
    @settings(max_examples=40, deadline=None)
    def test_flatness(self, histogram, seed):
        plan = build_field_plan("f", Counter(histogram), _stream(seed), _OPE)
        for value, count in histogram.items():
            chunks = plan.chunk_plan[value]
            if count == 1:
                assert chunks == [1] * plan.m
            else:
                assert sum(chunks) == count
                assert set(chunks) <= {plan.m - 1, plan.m, plan.m + 1}

    @given(_categorical_histograms, st.integers(0, 2**32))
    @settings(max_examples=30, deadline=None)
    def test_categorical_round_trip(self, histogram, seed):
        plan = build_field_plan("f", Counter(histogram), _stream(seed), _OPE)
        for value in plan.ordered_values:
            position = plan.position(value)
            assert position is not None
            assert plan.value_at_position(position) == value
            # A mid-displacement position still resolves to the value.
            assert plan.value_at_position(
                position + plan.max_displacement * 0.99
            ) == value


class TestPredicateOracle:
    @given(
        _numeric_histograms,
        st.integers(0, 2**32),
        st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
        st.integers(min_value=-520, max_value=520).map(str),
    )
    @settings(max_examples=60, deadline=None)
    def test_translation_sound_superset(self, histogram, seed, op, literal):
        """Translated ranges find every matching block; for known literals
        they are exact (no extra blocks)."""
        assume(len(histogram) >= 2)
        plan = build_field_plan("f", Counter(histogram), _stream(seed), _OPE)

        # Index: occurrence i of value v -> block hash(v, i).
        occurrences = []
        truth_blocks = set()
        block_counter = 0
        for value, count in sorted(histogram.items()):
            for _ in range(count):
                block_counter += 1
                occurrences.append((value, block_counter))
                if compare_values(value, op, literal):
                    truth_blocks.add(block_counter)
        index = build_value_index(
            {"f": occurrences}, {"f": plan}, {"f": "TOK"}, _OPE
        )
        ranges = translate_predicate(plan, op, literal, _OPE)
        got_blocks = index.lookup_blocks("TOK", ranges)

        assert truth_blocks <= got_blocks, "lost a matching block"
        # With neighbour anchoring the translation is exact everywhere
        # except '!=' on unknown literals (which deliberately scans all).
        if not (op == "!=" and plan.position(literal) is None):
            assert got_blocks == truth_blocks, "over-fetched"


class TestIndexProperties:
    @given(_numeric_histograms, st.integers(0, 2**32))
    @settings(max_examples=25, deadline=None)
    def test_scaling_multiplies_entries(self, histogram, seed):
        plan = build_field_plan("f", Counter(histogram), _stream(seed), _OPE)
        occurrences = []
        block = 0
        for value, count in sorted(histogram.items()):
            for _ in range(count):
                block += 1
                occurrences.append((value, block))
        index = build_value_index(
            {"f": occurrences}, {"f": plan}, {"f": "TOK"}, _OPE
        )
        tree = index.trees["TOK"]
        tree.check_invariants()
        expected = 0
        for value, count in histogram.items():
            per_value = plan.m if count == 1 else count
            expected += per_value * plan.scales[value]
        assert len(tree) == expected

    @given(_numeric_histograms, st.integers(0, 2**32))
    @settings(max_examples=25, deadline=None)
    def test_min_max_keys_invert_to_extremes(self, histogram, seed):
        plan = build_field_plan("f", Counter(histogram), _stream(seed), _OPE)
        occurrences = [
            (value, index)
            for index, value in enumerate(sorted(histogram))
            for _ in range(histogram[value])
        ]
        index = build_value_index(
            {"f": occurrences}, {"f": plan}, {"f": "TOK"}, _OPE
        )
        tree: BTree = index.trees["TOK"]
        numeric = sorted(histogram, key=float)
        assert plan.value_at_position(
            _OPE.decrypt_float(tree.min_key())
        ) == numeric[0]
        assert plan.value_at_position(
            _OPE.decrypt_float(tree.max_key())
        ) == numeric[-1]
