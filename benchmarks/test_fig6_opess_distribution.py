"""E1 — Figure 6: OPESS flattens a skewed value distribution.

The paper's Figure 6(a) shows a skewed input histogram over six values;
Figure 6(b) shows the encrypted values each occurring m−1, m or m+1 times.
This benchmark reproduces both sides for the figure's histogram, prints
them, and checks the flatness property.
"""

from collections import Counter

from repro.bench.harness import format_table
from repro.core.opess import build_field_plan, chunk_ciphertexts
from repro.crypto.ope import OrderPreservingEncryption
from repro.crypto.prf import DeterministicRandom

from conftest import write_result

#: Figure 6(a)'s skewed input (value -> occurrences); the "90" -> 34
#: decomposition is the example worked in the text.
FIG6_INPUT = {"1001": 16, "932": 8, "23": 26, "77": 7, "90": 34, "12": 13}


def _build_plan():
    ope = OrderPreservingEncryption(b"fig6-ope-key-0123456789abcdef-!!")
    stream = DeterministicRandom(b"fig6-stream-key!", "fig6")
    plan = build_field_plan("fig6", Counter(FIG6_INPUT), stream, ope)
    return plan, ope


def test_fig6_distribution_flattening(benchmark):
    plan, ope = benchmark.pedantic(_build_plan, rounds=1, iterations=1)

    before_rows = [[value, count] for value, count in FIG6_INPUT.items()]
    after_rows = []
    all_chunk_sizes = []
    for value in plan.ordered_values:
        ciphertexts = chunk_ciphertexts(plan, value, ope)
        for index, (ciphertext, chunk) in enumerate(
            zip(ciphertexts, plan.chunk_plan[value]), start=1
        ):
            after_rows.append([f"E({value}, k{index})", chunk])
            if FIG6_INPUT[value] > 1:
                all_chunk_sizes.append(chunk)

    table = (
        format_table(
            ["value", "occurrences"],
            before_rows,
            "Figure 6(a) — plaintext distribution",
        )
        + "\n\n"
        + format_table(
            ["encrypted value", "occurrences"],
            after_rows,
            f"Figure 6(b) — ciphertext distribution (m = {plan.m})",
        )
    )
    write_result("fig6_opess_distribution", table)

    # The paper's flatness claim: every ciphertext frequency is in
    # {m−1, m, m+1}.
    m = plan.m
    assert all(size in (m - 1, m, m + 1) for size in all_chunk_sizes)
    # The figure shows frequencies 6/7/8 (m = 7) for this input.
    assert m == 7
    # The worked example: 34 = 1·6 + 4·7 + 0·8 -> 5 encrypted values.
    assert sorted(plan.chunk_plan["90"]) == [6, 7, 7, 7, 7]
    # Spread between max and min ciphertext frequency is at most 2,
    # versus 27 in the input.
    assert max(all_chunk_sizes) - min(all_chunk_sizes) <= 2
