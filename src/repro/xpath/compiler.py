"""Compilation of XPath queries to pattern trees for server evaluation.

The server evaluates queries structurally, over DSI intervals, by twig
pattern matching (§6.2 steps 1–3).  This module lowers a parsed
:class:`~repro.xpath.ast.LocationPath` into a :class:`PatternTree`: a tree
of :class:`PatternNode` objects connected by ``child`` / ``descendant`` /
``attribute`` edges, with at most one value constraint per node and a single
distinguished *output* node (the query answer node).

:func:`compile_pattern` lowers exactly the paper's fragment (downward
axes, existence/value predicates) and raises :class:`UnsupportedQuery`
for anything else; :mod:`repro.xpath.plan` catches that and re-lowers
the query through the axis engine (:mod:`repro.xpath.axes`), which
generalizes the edge vocabulary to all thirteen axes and positional
predicates.  Both lowerings produce the same :class:`PatternTree` /
:class:`PatternNode` shapes, so the structural-join matchers run either.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.xpath import ast


class UnsupportedQuery(ValueError):
    """Raised when a query cannot be evaluated as a server-side pattern."""


@dataclass
class PatternNode:
    """One node of the twig pattern."""

    #: element tag, ``@name`` for attributes, or ``*``
    test: str
    #: axis connecting this node to its pattern parent:
    #: "child", "descendant" or "attribute" ("root-child"/"root-descendant"
    #: for the edge from the virtual document node).
    axis: str
    children: list["PatternNode"] = field(default_factory=list)
    #: (op, literal) when a comparison predicate constrains this node
    value_constraint: Optional[tuple[str, str]] = None
    is_output: bool = False
    #: the original step carries a positional predicate ([n] / last()),
    #: so the server must keep this node's candidate list complete: no
    #: bottom-up pruning of the node's own matches (top-down pruning from
    #: the parent remains sound) and the full surviving set ships.
    position_sensitive: bool = False

    @property
    def is_attribute(self) -> bool:
        return self.test.startswith("@")

    @property
    def is_wildcard(self) -> bool:
        return self.test in ("*", "@*")

    def walk(self):
        """Yield this node and all pattern descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __str__(self) -> str:
        constraint = ""
        if self.value_constraint:
            op, literal = self.value_constraint
            constraint = f"{op}{literal}"
        marker = "*OUT*" if self.is_output else ""
        return f"{self.axis}::{self.test}{constraint}{marker}"


@dataclass
class PatternTree:
    """A compiled query: pattern roots plus the output node."""

    roots: list[PatternNode]
    output: PatternNode
    #: the first named node on the main spine — the unit the server ships
    spine_root: PatternNode
    #: multi-ship override set by the axis engine: every node listed here
    #: ships its full surviving match set (union, deduplicated by the
    #: server's nested-fragment drop).  ``None`` keeps the legacy
    #: single-ship-node selection in the translator.
    ship_roots: Optional[list[PatternNode]] = None

    def nodes(self) -> list[PatternNode]:
        out: list[PatternNode] = []
        for root in self.roots:
            out.extend(root.walk())
        return out


def compile_pattern(path: ast.LocationPath) -> PatternTree:
    """Compile an absolute location path into a pattern tree."""
    if not path.absolute:
        raise UnsupportedQuery(
            "only absolute queries compile to server patterns"
        )
    spine, output = _compile_steps(path.steps, at_root=True)
    if spine is None or output is None:
        raise UnsupportedQuery("query has no named steps")
    output.is_output = True
    return PatternTree(roots=[spine], output=output, spine_root=spine)


def _compile_steps(
    steps: tuple[ast.Step, ...], at_root: bool
) -> tuple[Optional[PatternNode], Optional[PatternNode]]:
    """Compile a step chain; returns (first pattern node, last pattern node).

    ``at_root`` marks the chain as starting at the virtual document node,
    which prefixes the first edge's axis with ``root-``.
    """
    first: Optional[PatternNode] = None
    last: Optional[PatternNode] = None
    pending_descendant = False

    for step in steps:
        if (
            step.axis == ast.AXIS_DESCENDANT_OR_SELF
            and step.test.is_wildcard
            and not step.predicates
        ):
            pending_descendant = True
            continue
        if step.axis == ast.AXIS_SELF and step.test.is_wildcard and not step.predicates:
            continue  # '.' is a no-op in a forward chain
        if step.axis == ast.AXIS_CHILD:
            axis = "descendant" if pending_descendant else "child"
            test = step.test.name
        elif step.axis == ast.AXIS_DESCENDANT:
            axis = "descendant"
            test = step.test.name
        elif step.axis == ast.AXIS_ATTRIBUTE:
            # '//@x' keeps descendant reach; '/@x' is a direct attribute.
            axis = "attribute-descendant" if pending_descendant else "attribute"
            test = f"@{step.test.name}"
        elif step.axis == ast.AXIS_DESCENDANT_OR_SELF:
            # A named (or predicated) descendant-or-self step is not a
            # plain descendant edge — the or-self part would be lost.
            # The axis engine lowers it with a dedicated edge.
            raise UnsupportedQuery(
                "descendant-or-self with a name test or predicates"
            )
        else:
            raise UnsupportedQuery(
                f"axis {step.axis!r} is not server-evaluable"
            )
        pending_descendant = False

        node = PatternNode(test=test, axis=axis)
        if first is None:
            if at_root:
                if node.axis in ("attribute", "attribute-descendant"):
                    raise UnsupportedQuery("attribute step cannot be first")
                node.axis = f"root-{node.axis}"
            first = node
        else:
            assert last is not None
            last.children.append(node)
        _attach_predicates(node, step.predicates)
        last = node

    if pending_descendant:
        raise UnsupportedQuery("query cannot end with '//'")
    return first, last


def _attach_predicates(
    node: PatternNode, predicates: tuple[ast.Predicate, ...]
) -> None:
    for predicate in predicates:
        expr = predicate.expr
        if isinstance(expr, ast.Position):
            raise UnsupportedQuery("positional predicates are client-only")
        if isinstance(expr, ast.Exists):
            branch = _compile_branch(expr.path)
            node.children.append(branch)
        elif isinstance(expr, ast.Comparison):
            if _is_self_path(expr.path):
                _set_constraint(node, expr)
            else:
                branch = _compile_branch(expr.path)
                leaf = branch
                while leaf.children:
                    leaf = leaf.children[-1]
                _set_constraint(leaf, expr)
                node.children.append(branch)
        else:  # pragma: no cover - parser produces only the above
            raise UnsupportedQuery(f"unsupported predicate {expr!r}")


def _compile_branch(path: ast.LocationPath) -> PatternNode:
    if path.absolute:
        raise UnsupportedQuery("absolute paths inside predicates")
    branch, _ = _compile_steps(path.steps, at_root=False)
    if branch is None:
        raise UnsupportedQuery("empty predicate path")
    return branch


def _set_constraint(node: PatternNode, expr: ast.Comparison) -> None:
    if node.value_constraint is not None:
        raise UnsupportedQuery("multiple value constraints on one node")
    node.value_constraint = (expr.op, expr.literal)


def _is_self_path(path: ast.LocationPath) -> bool:
    return (
        not path.absolute
        and len(path.steps) == 1
        and path.steps[0].axis == ast.AXIS_SELF
        and path.steps[0].test.is_wildcard
        and not path.steps[0].predicates
    )
