"""Attack simulators for the §3.3 adversary.

The adversary is honest-but-curious with exact background knowledge of the
domain values and their occurrence frequencies per field, but no knowledge
of the tag distribution or value correlations.  Two attacks are modelled:

:class:`FrequencyAttack`
    Match plaintext values to ciphertext values by frequency.  Against a
    *naive* deterministic per-leaf encryption (no decoys, no OPESS) the
    frequency histogram is preserved and unique-frequency values are
    cracked outright — the §4.1 motivating failure.  Against the decoy
    construction every ciphertext has frequency 1 (database side), and
    against OPESS every ciphertext frequency is in {m−1, m, m+1} scaled by
    secret factors (index side), so the attack degrades to guessing among
    the Theorem 4.1 / 5.2 candidate sets.

:class:`SizeAttack`
    Eliminate candidate databases whose encryption has a different size
    than the observed ciphertext.  Candidates built by value-permutation
    of the true database survive (equal sizes) — condition (1) of
    Definition 3.1.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from fractions import Fraction

from repro.security.counting import database_candidates


@dataclass
class AttackReport:
    """Outcome of a simulated attack on one field."""

    field: str
    #: plaintext values the attacker recovered with certainty
    cracked: dict[str, object]
    #: number of plaintext values in the field
    domain_size: int
    #: attacker's success probability of a full correct assignment
    success_probability: Fraction

    @property
    def cracked_fraction(self) -> float:
        if self.domain_size == 0:
            return 0.0
        return len(self.cracked) / self.domain_size


class FrequencyAttack:
    """Frequency matching between known plaintext and observed ciphertext."""

    def __init__(self, plaintext_histogram: Counter) -> None:
        """``plaintext_histogram``: the attacker's exact prior knowledge."""
        self._plaintext = Counter(plaintext_histogram)

    def run(self, ciphertext_histogram: Counter, field: str = "") -> AttackReport:
        """Attack one field's observed ciphertext frequency profile.

        A plaintext value is *cracked* when its frequency is unique in the
        prior and exactly one ciphertext shows that frequency.  The overall
        success probability is ``1 / #consistent assignments``, where
        assignments map each plaintext value to a disjoint set of
        ciphertexts whose frequencies sum to the known count (0 if the
        profiles are inconsistent).
        """
        plain_frequencies = Counter(self._plaintext.values())
        cipher_by_frequency: dict[int, list[object]] = {}
        for ciphertext, count in ciphertext_histogram.items():
            cipher_by_frequency.setdefault(count, []).append(ciphertext)

        cracked: dict[str, object] = {}
        for value, count in self._plaintext.items():
            if plain_frequencies[count] != 1:
                continue
            exact = cipher_by_frequency.get(count, [])
            if len(exact) == 1 and sum(
                1
                for other_count, bucket in cipher_by_frequency.items()
                if other_count == count
                for _ in bucket
            ) == 1:
                cracked[value] = exact[0]

        success = self._assignment_probability(ciphertext_histogram)
        return AttackReport(
            field=field,
            cracked=cracked,
            domain_size=len(self._plaintext),
            success_probability=success,
        )

    def _assignment_probability(
        self, ciphertext_histogram: Counter
    ) -> Fraction:
        """1 / #(order-free consistent assignments), coarse but sound.

        Exact assignment counting is subset-sum-hard in general; we use the
        paper's own bounds: if the ciphertext profile equals the plaintext
        profile (naive encryption), the count is the product over frequency
        classes of (class size)! permutations; if every ciphertext has
        frequency 1 (decoy encryption), the count is Theorem 4.1's
        multinomial; otherwise we report the conservative lower bound 1
        (attacker may be able to crack it) unless the totals differ, in
        which case the observation is inconsistent and probability is 0.
        """
        plain_counts = sorted(self._plaintext.values())
        cipher_counts = sorted(ciphertext_histogram.values())
        if sum(plain_counts) != sum(cipher_counts):
            # Scaling broke the total-count invariant: no consistent
            # assignment the attacker can pin down.
            candidates = database_candidates(plain_counts)
            return Fraction(1, max(candidates, 1))
        if plain_counts == cipher_counts:
            permutations = 1
            for class_size in Counter(plain_counts).values():
                for i in range(2, class_size + 1):
                    permutations *= i
            return Fraction(1, permutations)
        if all(count == 1 for count in cipher_counts):
            return Fraction(1, database_candidates(plain_counts))
        return Fraction(1, 1)


class TagDistributionAttack:
    """The §8 item-2 limitation, demonstrated: tag-frequency matching.

    "Our current scheme cannot provide security against an attacker who
    has the prior knowledge of tag distribution" — the Vernam tag cipher
    is deterministic per tag, so an attacker who knows how often each tag
    occurs can match token *occurrence counts* in the DSI index table
    against the known tag histogram, exactly as the frequency attack
    matches values.  This class mounts that attack so the limitation is a
    reproducible fact rather than a remark.

    A tag cracks when its occurrence count is unique in the prior and
    exactly one token shows that count.  (Grouping blunts the attack a
    little: the table exposes entry/member counts, and we give the
    attacker the stronger member count.)
    """

    def __init__(self, tag_histogram: Counter) -> None:
        self._tags = Counter(tag_histogram)

    def run(self, hosted) -> dict[str, str]:
        """Return cracked {tag: token} against a hosted database's index."""
        token_counts: Counter = Counter()
        for key, entries in hosted.structural_index.table.items():
            encrypted = [e for e in entries if e.block_id is not None]
            if not encrypted or len(encrypted) != len(entries):
                continue  # plaintext tags are not hidden to begin with
            token_counts[key] = sum(len(e.member_ids) for e in encrypted)

        count_frequency = Counter(self._tags.values())
        tokens_by_count: dict[int, list[str]] = {}
        for token, count in token_counts.items():
            tokens_by_count.setdefault(count, []).append(token)

        cracked: dict[str, str] = {}
        for tag, count in self._tags.items():
            if count_frequency[count] != 1:
                continue
            candidates = tokens_by_count.get(count, [])
            if len(candidates) == 1:
                cracked[tag] = candidates[0]
        return cracked


def ciphertext_block_histogram(hosted, field_token: str) -> Counter:
    """The block-payload frequency profile of one field, as the attacker sees it.

    The DSI index table maps every tag token to interval entries, and each
    entry resolves to an encryption block; grouping blocks by identical
    ciphertext payload gives the attacker the per-field ciphertext
    histogram.  With decoys and randomized IVs every payload is unique
    (frequency 1 across the board); with the §4.1 strawman, equal
    plaintext leaves collide and the plaintext histogram shines through.
    """
    histogram: Counter = Counter()
    for entry in hosted.structural_index.lookup(field_token):
        if entry.block_id is None:
            continue
        payload = hosted.blocks.get(entry.block_id)
        if payload is not None:
            histogram[payload] += len(entry.member_ids)
    return histogram


class SizeAttack:
    """Candidate elimination by ciphertext size (Definition 3.1 cond. 1)."""

    def __init__(self, observed_size: int) -> None:
        self._observed = observed_size

    def surviving(self, candidate_sizes: list[int]) -> list[int]:
        """Indices of candidates whose encrypted size matches."""
        return [
            index
            for index, size in enumerate(candidate_sizes)
            if size == self._observed
        ]

    def eliminates(self, candidate_size: int) -> bool:
        return candidate_size != self._observed
