"""Tests for SHA-256, HMAC, SipHash and the PRF/PRG layer.

The hash implementations are cross-checked against the standard library and
published test vectors — the strongest evidence a from-scratch
implementation can give.
"""

import hashlib
import hmac as std_hmac

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hmac import derive_key, hmac_sha256
from repro.crypto.prf import PRF, DeterministicRandom
from repro.crypto.sha256 import sha256, sha256_hex
from repro.crypto.siphash import SipPRF, siphash24


class TestSHA256:
    @pytest.mark.parametrize(
        "message,expected",
        [
            (
                b"",
                "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
            ),
            (
                b"abc",
                "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
            ),
            (
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
            ),
        ],
    )
    def test_nist_vectors(self, message, expected):
        assert sha256_hex(message) == expected

    @given(st.binary(max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_matches_hashlib(self, message):
        assert sha256(message) == hashlib.sha256(message).digest()

    def test_padding_boundaries(self):
        # Lengths that straddle the 55/56/64-byte padding edges.
        for length in (54, 55, 56, 57, 63, 64, 65, 119, 120):
            message = b"q" * length
            assert sha256(message) == hashlib.sha256(message).digest()

    def test_rejects_str(self):
        with pytest.raises(TypeError):
            sha256("text")  # type: ignore[arg-type]


class TestHMAC:
    @given(st.binary(min_size=1, max_size=100), st.binary(max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_matches_stdlib(self, key, message):
        expected = std_hmac.new(key, message, hashlib.sha256).digest()
        assert hmac_sha256(key, message) == expected

    def test_long_key_hashed_first(self):
        key = b"k" * 200
        expected = std_hmac.new(key, b"m", hashlib.sha256).digest()
        assert hmac_sha256(key, b"m") == expected

    def test_rfc4231_case_1(self):
        key = b"\x0b" * 20
        digest = hmac_sha256(key, b"Hi There")
        assert digest.hex() == (
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        )


class TestDeriveKey:
    def test_deterministic(self):
        assert derive_key(b"m" * 16, "a", "b") == derive_key(b"m" * 16, "a", "b")

    def test_label_separation(self):
        master = b"m" * 16
        assert derive_key(master, "a", "bc") != derive_key(master, "ab", "c")
        assert derive_key(master, "x") != derive_key(master, "y")

    def test_key_separation(self):
        assert derive_key(b"m" * 16, "a") != derive_key(b"n" * 16, "a")


class TestSipHash:
    def test_reference_vectors(self):
        # Vectors from the SipHash paper (Appendix A) for key 00..0f.
        key = bytes(range(16))
        assert siphash24(key, b"") == 0x726FDB47DD0E0E31
        assert siphash24(key, bytes([0])) == 0x74F839C593DC67FD
        assert siphash24(key, bytes(range(8))) == 0x93F5F5799A932462
        assert siphash24(key, bytes(range(15))) == 0xA129CA6149BE45E5

    def test_key_length_enforced(self):
        with pytest.raises(ValueError):
            siphash24(b"short", b"")

    @given(st.binary(max_size=64))
    @settings(max_examples=40, deadline=None)
    def test_output_is_64_bit(self, message):
        value = siphash24(bytes(range(16)), message)
        assert 0 <= value < (1 << 64)

    def test_prf_wrapper(self):
        prf = SipPRF(b"0123456789abcdef")
        assert prf.integer(b"x") == prf.integer(b"x")
        assert prf.integer(b"x") != prf.integer(b"y")
        assert len(prf.block(b"z")) == 8


class TestPRF:
    def test_integer_truncation(self):
        prf = PRF(b"key")
        assert 0 <= prf.integer(b"m", bits=8) < 256
        assert 0 <= prf.integer(b"m", bits=64) < (1 << 64)

    def test_integer_bits_validated(self):
        prf = PRF(b"key")
        with pytest.raises(ValueError):
            prf.integer(b"m", bits=0)
        with pytest.raises(ValueError):
            prf.integer(b"m", bits=300)


class TestDeterministicRandom:
    def test_streams_reproducible(self):
        a = DeterministicRandom(b"k" * 16, "s")
        b = DeterministicRandom(b"k" * 16, "s")
        assert [a.uint(32) for _ in range(20)] == [b.uint(32) for _ in range(20)]

    def test_label_separation(self):
        a = DeterministicRandom(b"k" * 16, "s1")
        b = DeterministicRandom(b"k" * 16, "s2")
        assert [a.uint(32) for _ in range(5)] != [b.uint(32) for _ in range(5)]

    def test_uniform_range(self):
        stream = DeterministicRandom(b"k" * 16)
        for _ in range(200):
            value = stream.uniform(0.25, 0.5)
            assert 0.25 <= value < 0.5

    def test_randint_inclusive_bounds(self):
        stream = DeterministicRandom(b"k" * 16)
        draws = {stream.randint(3, 5) for _ in range(100)}
        assert draws == {3, 4, 5}

    def test_randint_single_point(self):
        stream = DeterministicRandom(b"k" * 16)
        assert stream.randint(7, 7) == 7

    def test_randint_validates(self):
        stream = DeterministicRandom(b"k" * 16)
        with pytest.raises(ValueError):
            stream.randint(5, 3)

    def test_shuffle_permutes(self):
        stream = DeterministicRandom(b"k" * 16)
        items = list(range(30))
        shuffled = list(items)
        stream.shuffle(shuffled)
        assert sorted(shuffled) == items
        assert shuffled != items  # astronomically unlikely to be identity

    def test_choice_and_token(self):
        stream = DeterministicRandom(b"k" * 16)
        assert stream.choice(["a"]) == "a"
        token = stream.token(6)
        assert len(token) == 6 and token.isalpha()
        with pytest.raises(ValueError):
            stream.choice([])

    def test_bytes_negative_rejected(self):
        stream = DeterministicRandom(b"k" * 16)
        with pytest.raises(ValueError):
            stream.bytes(-1)

    def test_randint_statistically_uniform(self):
        stream = DeterministicRandom(b"k" * 16)
        counts = [0] * 4
        for _ in range(4000):
            counts[stream.randint(0, 3)] += 1
        assert all(800 < count < 1200 for count in counts)
