"""Unit tests for the XPath evaluator (the system's correctness oracle)."""

import pytest

from repro.xmldb.parser import parse_document
from repro.xpath.evaluator import (
    compare_values,
    evaluate,
    evaluate_on_element,
    matches,
)


@pytest.fixture
def doc():
    return parse_document(
        """
        <store>
          <dept name="fruit">
            <item><label>apple</label><price>3</price></item>
            <item><label>pear</label><price>5</price></item>
          </dept>
          <dept name="tools">
            <item special="yes"><label>saw</label><price>25</price></item>
          </dept>
          <manager>Ann</manager>
        </store>
        """
    )


def values(nodes):
    return [n.text_value() for n in nodes]


class TestAxes:
    def test_root_selection(self, doc):
        result = evaluate(doc, "/store")
        assert len(result) == 1 and result[0] is doc.root

    def test_wrong_root_empty(self, doc):
        assert evaluate(doc, "/shop") == []

    def test_child_chain(self, doc):
        assert values(evaluate(doc, "/store/dept/item/label")) == [
            "apple",
            "pear",
            "saw",
        ]

    def test_descendant(self, doc):
        assert values(evaluate(doc, "//label")) == ["apple", "pear", "saw"]

    def test_inner_descendant(self, doc):
        assert values(evaluate(doc, "/store//price")) == ["3", "5", "25"]

    def test_wildcard(self, doc):
        tags = [n.tag for n in evaluate(doc, "/store/*")]
        assert tags == ["dept", "dept", "manager"]

    def test_attribute_axis(self, doc):
        names = [n.value for n in evaluate(doc, "//dept/@name")]
        assert names == ["fruit", "tools"]

    def test_attribute_wildcard(self, doc):
        attrs = evaluate(doc, "//item/@*")
        assert [a.name for a in attrs] == ["special"]

    def test_parent_axis(self, doc):
        result = evaluate(doc, "//label/..")
        assert all(n.tag == "item" for n in result)
        assert len(result) == 3

    def test_self_axis(self, doc):
        assert values(evaluate(doc, "//label/.")) == ["apple", "pear", "saw"]

    def test_following_sibling(self, doc):
        result = evaluate(doc, "//label/following-sibling::price")
        assert values(result) == ["3", "5", "25"]

    def test_preceding_sibling(self, doc):
        result = evaluate(doc, "//price/preceding-sibling::label")
        assert values(result) == ["apple", "pear", "saw"]

    def test_ancestor(self, doc):
        result = evaluate(doc, "//label/ancestor::dept")
        assert len(result) == 2  # deduplicated

    def test_descendant_explicit_axis(self, doc):
        result = evaluate(doc, "/store/descendant::price")
        assert len(result) == 3


class TestPredicates:
    def test_existence(self, doc):
        result = evaluate(doc, "//item[label]")
        assert len(result) == 3
        assert evaluate(doc, "//item[missing]") == []

    def test_equality_string(self, doc):
        result = evaluate(doc, "//item[label='saw']/price")
        assert values(result) == ["25"]

    def test_numeric_comparisons(self, doc):
        assert values(evaluate(doc, "//item[price>4]/label")) == ["pear", "saw"]
        assert values(evaluate(doc, "//item[price<=3]/label")) == ["apple"]
        assert values(evaluate(doc, "//item[price!=5]/label")) == ["apple", "saw"]

    def test_attribute_predicate(self, doc):
        result = evaluate(doc, "//item[@special='yes']/label")
        assert values(result) == ["saw"]

    def test_attribute_existence_predicate(self, doc):
        result = evaluate(doc, "//item[@special]/label")
        assert values(result) == ["saw"]

    def test_positional(self, doc):
        assert values(evaluate(doc, "/store/dept[2]/item/label")) == ["saw"]
        assert values(evaluate(doc, "//dept/item[1]/label")) == ["apple", "saw"]

    def test_positional_out_of_range(self, doc):
        assert evaluate(doc, "/store/dept[5]") == []

    def test_nested_path_predicate(self, doc):
        result = evaluate(doc, "/store[dept/item/label='saw']/manager")
        assert values(result) == ["Ann"]

    def test_self_value_predicate(self, doc):
        assert values(evaluate(doc, "//price[.>4]")) == ["5", "25"]

    def test_multiple_predicates_conjunction(self, doc):
        result = evaluate(doc, "//item[label='saw'][price=25]")
        assert len(result) == 1

    def test_descendant_in_predicate(self, doc):
        result = evaluate(doc, "/store/dept[.//price=25]/@name")
        assert [a.value for a in result] == ["tools"]


class TestContextual:
    def test_evaluate_on_element_relative(self, doc):
        dept = evaluate(doc, "/store/dept")[0]
        assert values(evaluate_on_element(dept, "item/label")) == [
            "apple",
            "pear",
        ]

    def test_evaluate_on_element_absolute_resolves_root(self, doc):
        dept = evaluate(doc, "/store/dept")[0]
        assert values(evaluate_on_element(dept, "//manager")) == ["Ann"]

    def test_matches(self, doc):
        saw_label = evaluate(doc, "//item[price=25]/label")[0]
        assert matches(doc, "//label", saw_label)
        assert not matches(doc, "//manager", saw_label)

    def test_document_order_and_dedup(self, doc):
        result = evaluate(doc, "//item/ancestor::dept/item/label")
        assert values(result) == ["apple", "pear", "saw"]


class TestCompareValues:
    @pytest.mark.parametrize(
        "left,op,right,expected",
        [
            ("3", "<", "12", True),     # numeric, not lexicographic
            ("abc", "<", "abd", True),  # string fallback
            ("3", "=", "3.0", True),    # numeric equality coerces
            ("x", "=", "x", True),
            ("x", "!=", "y", True),
            ("10", ">=", "10", True),
            ("9", ">", "10", False),
        ],
    )
    def test_semantics(self, left, op, right, expected):
        assert compare_values(left, op, right) is expected

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            compare_values("1", "~", "2")
