"""Keyed order-preserving encryption (OPE) over numeric domains.

OPESS (§5.2.1) needs "any order-preserving encryption function, such as was
proposed by [Agrawal et al. 2004]": a keyed, strictly increasing map ``enc``
applied to the displaced plaintext values.  This module implements one by
lazily sampling a random strictly monotone function with a keyed PRF:

The domain ``[0, 2^domain_bits)`` is mapped into the larger range
``[0, 2^(domain_bits + expansion_bits))``.  ``encrypt`` walks a binary
bisection of the domain; at each internal node the PRF deterministically
picks where the midpoint's image splits the current range, constrained so
that every domain subinterval keeps at least as much range as it has points.
That constraint makes the sampled function *strictly* increasing, and the
PRF makes it a deterministic function of the key — two clients with the same
key agree on every ciphertext, which is what lets the client translate query
range bounds that the server then compares against B-tree entries.

Real-valued inputs (OPESS displaces plaintexts by fractions ``w·δ`` of the
value gap) are quantized to fixed-point integers first; the quantization
step is chosen far below the minimum displacement OPESS can produce, so
ordering is never disturbed.
"""

from __future__ import annotations

from struct import pack as _pack

from repro.crypto.siphash import SipPRF


def _pack_rectangle(
    domain_low: int, domain_high: int, range_low: int, range_high: int
) -> bytes:
    """Binary PRF seed for one bisection rectangle (cheap and collision-free)."""
    return _pack("<4Q", domain_low, domain_high, range_low, range_high)


class OrderPreservingEncryption:
    """A keyed strictly increasing function on a bounded integer domain."""

    def __init__(
        self,
        key: bytes,
        domain_bits: int = 44,
        expansion_bits: int = 16,
        precision: int = 6,
    ) -> None:
        if domain_bits < 4 or domain_bits > 60:
            raise ValueError("domain_bits must be in [4, 60]")
        if expansion_bits < 2 or expansion_bits > 32:
            raise ValueError("expansion_bits must be in [2, 32]")
        # One PRF evaluation per bisection level makes the PRF the hot
        # path; SipHash-2-4 keeps an encryption in the tens of
        # microseconds where HMAC-SHA256 would cost milliseconds.
        self._prf = SipPRF(key)
        self._memo: dict[tuple[int, int, int, int], tuple[int, int]] = {}
        self.domain_size = 1 << domain_bits
        self.range_size = 1 << (domain_bits + expansion_bits)
        #: Fixed-point scale for real inputs: 10**precision units per 1.0.
        self.scale = 10 ** precision
        #: Offset shifting signed inputs into the non-negative domain.
        self.offset = self.domain_size // 2

    # ------------------------------------------------------------------
    # Integer-domain interface
    # ------------------------------------------------------------------
    def encrypt_int(self, value: int) -> int:
        """Encrypt a domain point (raises if out of the key's domain)."""
        if not 0 <= value < self.domain_size:
            raise ValueError(f"value {value} outside OPE domain")
        domain_low, domain_high = 0, self.domain_size - 1
        range_low, range_high = 0, self.range_size - 1
        while domain_low < domain_high:
            domain_mid, range_mid = self._split(
                domain_low, domain_high, range_low, range_high
            )
            if value <= domain_mid:
                domain_high = domain_mid
                range_high = range_mid
            else:
                domain_low = domain_mid + 1
                range_low = range_mid + 1
        return range_low

    def decrypt_int(self, ciphertext: int) -> int:
        """Invert :meth:`encrypt_int` (raises if not a valid ciphertext)."""
        if not 0 <= ciphertext < self.range_size:
            raise ValueError("ciphertext outside OPE range")
        domain_low, domain_high = 0, self.domain_size - 1
        range_low, range_high = 0, self.range_size - 1
        while domain_low < domain_high:
            domain_mid, range_mid = self._split(
                domain_low, domain_high, range_low, range_high
            )
            if ciphertext <= range_mid:
                domain_high = domain_mid
                range_high = range_mid
            else:
                domain_low = domain_mid + 1
                range_low = range_mid + 1
        if self.encrypt_int(domain_low) != ciphertext:
            raise ValueError("not a valid ciphertext for this key")
        return domain_low

    def _split(
        self,
        domain_low: int,
        domain_high: int,
        range_low: int,
        range_high: int,
    ) -> tuple[int, int]:
        """Deterministically split the current (domain, range) rectangle.

        The domain splits at its midpoint.  The range split point is drawn
        by the PRF uniformly from the interval that leaves both halves at
        least as much range as they have domain points — the invariant that
        guarantees strict monotonicity all the way down.
        """
        cache_key = (domain_low, domain_high, range_low, range_high)
        cached = self._memo.get(cache_key)
        if cached is not None:
            return cached
        domain_mid = (domain_low + domain_high) // 2
        left_points = domain_mid - domain_low + 1
        right_points = domain_high - domain_mid
        min_range_mid = range_low + left_points - 1
        max_range_mid = range_high - right_points
        seed = _pack_rectangle(domain_low, domain_high, range_low, range_high)
        draw = self._prf.integer(seed)
        span = max_range_mid - min_range_mid + 1
        range_mid = min_range_mid + (draw % span)
        if len(self._memo) < 1_000_000:
            self._memo[cache_key] = (domain_mid, range_mid)
        return domain_mid, range_mid

    # ------------------------------------------------------------------
    # Real-valued interface used by OPESS
    # ------------------------------------------------------------------
    def quantize(self, value: float) -> int:
        """Map a real value to its fixed-point domain index."""
        index = round(value * self.scale) + self.offset
        if not 0 <= index < self.domain_size:
            raise ValueError(f"value {value} outside OPE real-valued domain")
        return index

    def encrypt_float(self, value: float) -> int:
        """Encrypt a real value via fixed-point quantization."""
        return self.encrypt_int(self.quantize(value))

    def decrypt_float(self, ciphertext: int) -> float:
        """Decrypt back to the (quantized) real value."""
        return (self.decrypt_int(ciphertext) - self.offset) / self.scale
