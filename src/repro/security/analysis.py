"""Security audit of a hosted system: one report, every margin.

Pulls the whole security toolkit together into an adopter-facing artifact:
given a hosted :class:`~repro.core.system.SecureXMLSystem` (and, client-
side, the plaintext document), compute for each defence the quantitative
margin the theorems promise and the attack simulators measure:

* per-field Theorem 4.1 candidate counts and frequency-attack outcomes
  against the real value index;
* the Theorem 5.1 structural candidate count of the actual DSI table;
* per-field Theorem 5.2 partition counts;
* the residual exposure to the out-of-model tag-distribution attack
  (§8 item 2), so owners see what this scheme does **not** protect.

The report renders as a fixed-width text document (the CLI ``audit``
command prints it) and is also available as structured data for tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

from repro.security.attacks import FrequencyAttack, TagDistributionAttack
from repro.security.counting import (
    database_candidates,
    structural_candidates,
    value_index_candidates,
)
from repro.xmldb.node import Document
from repro.xmldb.stats import tag_histogram, value_frequencies


@dataclass
class FieldAudit:
    """Security margins for one encrypted field."""

    field_name: str
    plaintext_values: int
    ciphertext_values: int
    database_candidates: int
    partition_candidates: int
    cracked_by_frequency: int
    attack_success_probability: Fraction


@dataclass
class AuditReport:
    """The full audit result."""

    scheme_kind: str
    block_count: int
    hosted_bytes: int
    fields: list[FieldAudit] = field(default_factory=list)
    structural_candidates: int = 1
    grouped_blocks: int = 0
    tags_cracked_with_priors: list[str] = field(default_factory=list)

    @property
    def weakest_field(self) -> FieldAudit | None:
        if not self.fields:
            return None
        return min(self.fields, key=lambda f: f.database_candidates)

    @property
    def any_value_cracked(self) -> bool:
        return any(f.cracked_by_frequency for f in self.fields)

    def render(self) -> str:
        lines = [
            "SECURITY AUDIT",
            "==============",
            f"scheme: {self.scheme_kind}   blocks: {self.block_count}   "
            f"hosted bytes: {self.hosted_bytes}",
            "",
            "Per-field margins (Theorems 4.1 / 5.2 + frequency attack):",
        ]
        for audit in self.fields:
            lines.append(
                f"  {audit.field_name:<14} "
                f"k={audit.plaintext_values:<4} n={audit.ciphertext_values:<5} "
                f"Thm4.1 candidates={audit.database_candidates:<12,} "
                f"Thm5.2 partitions={audit.partition_candidates:<12,} "
                f"cracked={audit.cracked_by_frequency}"
            )
        lines.append("")
        lines.append(
            f"Structural index (Theorem 5.1): "
            f"{self.structural_candidates:,} candidate structures "
            f"({self.grouped_blocks} blocks with grouping)"
        )
        lines.append("")
        if self.tags_cracked_with_priors:
            lines.append(
                "OUT-OF-MODEL EXPOSURE — an attacker with tag-frequency "
                "priors identifies these encrypted tags (§8 item 2):"
            )
            for tag in self.tags_cracked_with_priors:
                lines.append(f"  {tag}")
        else:
            lines.append(
                "Tag-distribution attack (out of model): no tag identified."
            )
        lines.append("")
        verdict = (
            "FAIL: frequency attack cracked values"
            if self.any_value_cracked
            else "PASS: no value cracked; margins above"
        )
        lines.append(f"verdict: {verdict}")
        return "\n".join(lines)


def audit_system(system, document: Document) -> AuditReport:
    """Audit a hosted system against its own plaintext (client-side op).

    ``document`` is the owner's plaintext — the audit runs where the data
    owner runs, comparing what the server stores against what an attacker
    with the §3.3 priors could do with it.
    """
    hosted = system.hosted
    report = AuditReport(
        scheme_kind=system.scheme.kind,
        block_count=hosted.block_count(),
        hosted_bytes=hosted.hosted_size_bytes(),
    )

    plaintext_fields = value_frequencies(document)
    for field_name, plan in sorted(hosted.field_plans.items()):
        histogram = plaintext_fields.get(field_name)
        if not histogram:
            continue
        token = hosted.field_tokens[field_name]
        observed = hosted.value_index.ciphertext_histogram(token)
        attack = FrequencyAttack(histogram).run(observed, field_name)
        ciphertext_values = sum(
            len(chunks) for chunks in plan.chunk_plan.values()
        )
        report.fields.append(
            FieldAudit(
                field_name=field_name,
                plaintext_values=len(plan.ordered_values),
                ciphertext_values=ciphertext_values,
                database_candidates=database_candidates(
                    list(histogram.values())
                ),
                partition_candidates=value_index_candidates(
                    ciphertext_values, len(plan.ordered_values)
                ),
                cracked_by_frequency=len(attack.cracked),
                attack_success_probability=attack.success_probability,
            )
        )

    profile: dict[int, list[int]] = {}
    for entry in hosted.structural_index.all_entries():
        if entry.block_id is None:
            continue
        bucket = profile.setdefault(entry.block_id, [0, 0])
        bucket[0] += len(entry.member_ids)
        bucket[1] += 1
    pairs = [(members, intervals) for members, intervals in profile.values()]
    report.structural_candidates = structural_candidates(pairs) if pairs else 1
    report.grouped_blocks = sum(1 for n, k in pairs if n > k)

    tag_attack = TagDistributionAttack(tag_histogram(document))
    report.tags_cracked_with_priors = sorted(tag_attack.run(hosted))

    return report
