"""E-serving — sustained socket QPS vs the in-process warm path.

Measures the asyncio serving layer's front-door overhead under real
concurrency: ``REPRO_SERVING_CLIENTS`` (default 100) socket clients each
issue a mixed sequence of sealed queries and sealed updates through
:func:`~repro.serving.loadgen.run_load`, against one served healthcare
tenant.  The baseline is the *in-process warm path*: the exact same
operation sequence, executed sequentially through the same owner-side
sealer against ``system.server`` directly — same crypto, same server
work, no sockets, no event loop, no admission control.

The acceptance gate is relative, so it holds on any hardware: sustained
socket QPS must be within ``REPRO_SERVING_QPS_FACTOR`` (default 2x) of
the in-process warm path, with zero failed operations.  A byte-identity
pre-phase pins correctness first — a QPS number that changed an answer
would be a bug, not a result.

Results land in ``benchmarks/results/`` (human-readable) and
machine-readable ``BENCH_serving.json`` at the repository root.
"""

from __future__ import annotations

import gc
import json
import os
import time

import pytest

from repro.bench.harness import format_table, trimmed_mean
from repro.core.client import Client
from repro.core.system import SecureXMLSystem
from repro.serving import ServingServer, remote_system
from repro.serving.loadgen import run_load
from repro.workloads.healthcare import (
    build_healthcare_database,
    healthcare_constraints,
)

from conftest import BENCH_TRIALS, write_result

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_serving.json")

#: concurrent socket clients (the issue's acceptance point is 100)
CLIENTS = int(os.environ.get("REPRO_SERVING_CLIENTS", "100"))

#: operations per client per trial
OPS_PER_CLIENT = int(os.environ.get("REPRO_SERVING_OPS", "20"))

#: every Nth operation of the global sequence is a sealed update
UPDATE_EVERY = 25

#: gate: serving QPS * factor must reach the in-process warm QPS
QPS_FACTOR = float(os.environ.get("REPRO_SERVING_QPS_FACTOR", "2.0"))

#: the chaos suite's query mix — one per §7.1 shape that matters here
QUERIES = [
    "//patient[.//insurance//@coverage>=10000]//SSN",
    "//treat[disease='leukemia']/doctor",
    "//patient[age>36]/pname",
    "//insurance/policy#",
    "//SSN",
]

#: update target that always matches exactly one node, so the two ops
#: can alternate forever without ever invalidating each other
PROBE = "//patient[pname='Betty']/SSN"
UPDATE_OPS = [
    {"op": "update_value", "xpath": PROBE, "new_value": "111111"},
    {"op": "update_value", "xpath": PROBE, "new_value": "222222"},
]

_REPORT: dict[str, object] = {
    "trials": BENCH_TRIALS,
    "clients": CLIENTS,
    "ops_per_client": OPS_PER_CLIENT,
    "update_every": UPDATE_EVERY,
    "qps_factor": QPS_FACTOR,
}


def _write_report() -> None:
    with open(BENCH_JSON, "w", encoding="utf-8") as handle:
        json.dump(_REPORT, handle, indent=2, sort_keys=True)
        handle.write("\n")


@pytest.fixture(scope="module")
def stack():
    """One served healthcare tenant plus its owner-side system."""
    local = SecureXMLSystem.host(
        build_healthcare_database(),
        healthcare_constraints(),
        scheme="opt",
        parallel=False,
    )
    # One outstanding op per client: an admission bound at the client
    # count measures serving throughput, not retry-storm throughput.
    server = ServingServer(max_inflight=CLIENTS + 16)
    server.register_tenant("bench", local)
    address = server.start()
    yield local, server, address
    server.stop()
    local.close()


def test_served_answers_are_byte_identical(stack):
    """Correctness gate before any throughput number is recorded."""
    local, _server, address = stack
    remote = remote_system(local, address, "bench", parallel=False)
    try:
        for query in QUERIES:
            assert (
                remote.query(query).canonical()
                == local.query(query).canonical()
            ), query
    finally:
        remote.close()
    _REPORT["byte_identity"] = {"queries": len(QUERIES), "ok": True}
    _write_report()


def _inprocess_pass(local: SecureXMLSystem, sealer: Client) -> float:
    """The same global op sequence, sequential and socket-free."""
    total = CLIENTS * OPS_PER_CLIENT
    started = time.perf_counter()
    for seq in range(total):
        if seq % UPDATE_EVERY == UPDATE_EVERY - 1:
            op = UPDATE_OPS[seq % len(UPDATE_OPS)]
            local.update_value(op["xpath"], op["new_value"])
        else:
            xpath = QUERIES[seq % len(QUERIES)]
            plan = sealer.translate(xpath)
            blob = sealer.seal_request(plan, cache_key=xpath)
            sealer.open_response(local.server.answer_wire(blob))
    return time.perf_counter() - started


def test_sustained_qps_within_factor_of_inprocess(stack):
    local, _server, address = stack

    # Warm pass: connections, plan/seal caches, server memo — both the
    # serving path and the baseline measure warm steady state.
    warm = run_load(
        address, "bench", local, QUERIES,
        clients=CLIENTS, ops_per_client=2,
        update_ops=UPDATE_OPS, update_every=UPDATE_EVERY,
    )
    assert warm.failures == 0, "warm-up pass failed operations"

    trials = []
    gc.collect()
    for _ in range(BENCH_TRIALS):
        report = run_load(
            address, "bench", local, QUERIES,
            clients=CLIENTS, ops_per_client=OPS_PER_CLIENT,
            update_ops=UPDATE_OPS, update_every=UPDATE_EVERY,
        )
        assert report.failures == 0, (
            f"{report.failures} operations exhausted retries"
        )
        assert report.operations == CLIENTS * OPS_PER_CLIENT
        trials.append(report)
    serving_qps = trimmed_mean([t.qps for t in trials])

    sealer = Client(local.keyring, local.hosted, enable_cache=True)
    _inprocess_pass(local, sealer)  # warm the sealer's caches
    gc.collect()
    gc.disable()
    try:
        inproc_samples = [
            (CLIENTS * OPS_PER_CLIENT) / _inprocess_pass(local, sealer)
            for _ in range(BENCH_TRIALS)
        ]
    finally:
        gc.enable()
    inproc_qps = trimmed_mean(inproc_samples)

    ratio = inproc_qps / serving_qps if serving_qps else float("inf")
    rows = [
        ["serving (sockets)", CLIENTS, trials[-1].operations,
         trials[-1].retries, f"{serving_qps:.0f}"],
        ["in-process warm", 1, CLIENTS * OPS_PER_CLIENT, 0,
         f"{inproc_qps:.0f}"],
    ]
    write_result(
        "serving_qps",
        format_table(
            ["path", "clients", "ops", "retries", "qps"],
            rows,
            f"Sustained QPS — {CLIENTS} concurrent socket clients vs the "
            f"sequential in-process warm path (gate: within "
            f"{QPS_FACTOR:.1f}x)",
        ),
    )
    _REPORT["sustained_qps"] = {
        "serving_qps": serving_qps,
        "inprocess_qps": inproc_qps,
        "overhead_ratio": ratio,
        "serving_trials": [
            {
                "qps": t.qps,
                "queries": t.queries,
                "updates": t.updates,
                "retries": t.retries,
                "flight_accepts": t.flight_accepts,
                "elapsed_s": t.elapsed_s,
            }
            for t in trials
        ],
    }
    _write_report()

    assert serving_qps * QPS_FACTOR >= inproc_qps, (
        f"socket path sustained {serving_qps:.0f} qps, more than "
        f"{QPS_FACTOR:.1f}x below the in-process warm path "
        f"({inproc_qps:.0f} qps)"
    )
