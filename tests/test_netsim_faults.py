"""Unit tests for the deterministic fault-injection layer."""

import pytest

from repro.netsim import (
    FaultPolicy,
    FaultRates,
    FaultyChannel,
    TransferDropped,
)

#: Traffic pattern used by the determinism tests: (direction, size).
TRAFFIC = [
    ("client->server", 120),
    ("server->client", 4096),
    ("client->server", 120),
    ("server->client", 900),
    ("client->server", 64),
    ("server->client", 12000),
] * 10


def run_traffic(policy: FaultPolicy) -> list[str]:
    """Drive a FaultyChannel with the fixed traffic; summarize outcomes."""
    channel = FaultyChannel(policy=policy)
    outcomes = []
    for direction, size in TRAFFIC:
        payload = bytes(i % 256 for i in range(size))
        try:
            delivered, _ = channel.transfer(direction, "t", payload)
        except TransferDropped:
            outcomes.append("dropped")
            continue
        if delivered == payload:
            outcomes.append("clean")
        elif len(delivered) < len(payload):
            outcomes.append("truncated")
        else:
            outcomes.append("corrupted")
    return outcomes


class TestFaultRates:
    def test_defaults_are_zero(self):
        rates = FaultRates()
        assert not rates.any

    @pytest.mark.parametrize("name", ["drop", "corrupt", "truncate",
                                      "duplicate", "delay"])
    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_out_of_range_rejected(self, name, bad):
        with pytest.raises(ValueError, match=name):
            FaultRates(**{name: bad})

    def test_any_detects_each_rate(self):
        for name in ("drop", "corrupt", "truncate", "duplicate", "delay"):
            assert FaultRates(**{name: 0.3}).any


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        first = FaultPolicy.symmetric(seed=42, drop=0.2, corrupt=0.3,
                                      truncate=0.1, delay=0.2, duplicate=0.1)
        second = FaultPolicy.symmetric(seed=42, drop=0.2, corrupt=0.3,
                                       truncate=0.1, delay=0.2, duplicate=0.1)
        assert run_traffic(first) == run_traffic(second)
        assert first.schedule_signature() == second.schedule_signature()
        assert first.schedule_signature()  # the rates do fire at these sizes

    def test_different_seed_different_schedule(self):
        first = FaultPolicy.symmetric(seed=1, drop=0.3, corrupt=0.3)
        second = FaultPolicy.symmetric(seed=2, drop=0.3, corrupt=0.3)
        run_traffic(first)
        run_traffic(second)
        assert first.schedule_signature() != second.schedule_signature()

    def test_zero_rates_consume_no_randomness(self):
        """A quiet direction must not shift the other direction's draws."""
        noisy = FaultRates(drop=0.5, corrupt=0.5)
        asym = FaultPolicy(seed=9, server_to_client=noisy)
        sym_reference = FaultPolicy(seed=9, server_to_client=noisy)
        # Interleave extra client->server (faultless) traffic in one run.
        channel = FaultyChannel(policy=asym)
        reference = FaultyChannel(policy=sym_reference)

        def attempt(target, direction, payload):
            try:
                target.transfer(direction, "t", payload)
            except TransferDropped:
                pass

        for size in (100, 200, 300):
            attempt(channel, "client->server", b"x" * 50)
            attempt(channel, "server->client", b"y" * size)
            attempt(reference, "server->client", b"y" * size)
        assert [
            (e.direction, e.kind, e.detail) for e in asym.schedule
        ] == [
            (e.direction, e.kind, e.detail) for e in sym_reference.schedule
        ]


class TestFaultyChannelBehaviour:
    def test_no_faults_is_passthrough(self):
        channel = FaultyChannel(policy=FaultPolicy())
        payload, seconds = channel.transfer("client->server", "q", b"hello")
        assert payload == b"hello"
        assert seconds > 0.0
        assert channel.total_bytes() == 5

    def test_drop_raises_and_still_bills_bytes(self):
        policy = FaultPolicy.symmetric(seed=0, drop=1.0)
        channel = FaultyChannel(policy=policy)
        with pytest.raises(TransferDropped):
            channel.transfer("client->server", "q", b"hello")
        assert channel.total_bytes() == 5  # the wire still carried it

    def test_corrupt_flips_exactly_one_byte(self):
        policy = FaultPolicy.symmetric(seed=3, corrupt=1.0)
        channel = FaultyChannel(policy=policy)
        original = bytes(range(256))
        delivered, _ = channel.transfer("server->client", "a", original)
        assert len(delivered) == len(original)
        differing = [
            i for i, (a, b) in enumerate(zip(original, delivered)) if a != b
        ]
        assert len(differing) == 1

    def test_truncate_shortens_payload(self):
        policy = FaultPolicy.symmetric(seed=5, truncate=1.0)
        channel = FaultyChannel(policy=policy)
        delivered, _ = channel.transfer("server->client", "a", b"z" * 100)
        assert len(delivered) < 100

    def test_duplicate_bills_twice(self):
        policy = FaultPolicy.symmetric(seed=0, duplicate=1.0)
        channel = FaultyChannel(policy=policy)
        delivered, _ = channel.transfer("client->server", "q", b"q" * 10)
        assert delivered == b"q" * 10  # idempotent for request/response
        assert channel.total_bytes() == 20

    def test_delay_adds_modelled_seconds(self):
        quiet = FaultyChannel(policy=FaultPolicy())
        _, base = quiet.transfer("client->server", "q", b"q" * 10)
        delayed = FaultyChannel(
            policy=FaultPolicy.symmetric(seed=0, delay=1.0)
        )
        _, slowed = delayed.transfer("client->server", "q", b"q" * 10)
        assert slowed == pytest.approx(base + delayed.policy.delay_seconds)

    def test_direction_validation_applies(self):
        with pytest.raises(ValueError, match="direction"):
            FaultyChannel(policy=FaultPolicy()).transfer("diag", "q", b"x")

    def test_schedule_records_transfer_indices(self):
        policy = FaultPolicy.symmetric(seed=1, drop=1.0)
        channel = FaultyChannel(policy=policy)
        for index in range(3):
            with pytest.raises(TransferDropped):
                channel.transfer("client->server", "q", b"x")
        assert [e.transfer_index for e in policy.schedule] == [0, 1, 2]
        assert all(e.kind == "drop" for e in policy.schedule)
