"""Tests for the incremental-update extension (paper §8 future work)."""

import pytest

from repro.core.client import canonical_node
from repro.core.system import SecureXMLSystem
from repro.core.updates import UpdateError
from repro.xmldb.node import Element, Text
from repro.xpath.evaluator import evaluate


@pytest.fixture
def pair(healthcare_doc, healthcare_scs):
    """A hosted system plus a plaintext oracle mutated in lockstep."""
    from repro.workloads.healthcare import build_healthcare_database

    system = SecureXMLSystem.host(
        healthcare_doc, healthcare_scs, scheme="opt"
    )
    oracle = build_healthcare_database()
    return system, oracle


def check(system, oracle, query):
    truth = sorted(canonical_node(n) for n in evaluate(oracle, query))
    assert system.query(query).canonical() == truth, query


def oracle_append_leaf(oracle, parent_query, tag, value):
    parent = evaluate(oracle, parent_query)[0]
    leaf = Element(tag)
    leaf.append(Text(value))
    parent.append(leaf)
    oracle.renumber()


class TestInsert:
    def test_insert_plaintext_leaf(self, pair):
        system, oracle = pair
        system.insert_element("//patient[pname='Matt']", "phone", "555-1234")
        oracle_append_leaf(oracle, "//patient[pname='Matt']", "phone", "555-1234")
        check(system, oracle, "//patient/phone")
        check(system, oracle, "//patient[phone='555-1234']/pname")

    def test_insert_encrypted_leaf(self, pair):
        """A covered-field insert becomes a fresh encryption block."""
        system, oracle = pair
        blocks_before = system.hosted.block_count()
        system.insert_element("//patient[pname='Matt']/treat", "disease", "flu")
        oracle_append_leaf(
            oracle, "//patient[pname='Matt']/treat", "disease", "flu"
        )
        assert system.hosted.block_count() == blocks_before + 1
        check(system, oracle, "//patient[pname='Matt']//disease")
        check(system, oracle, "//treat[disease='flu']/doctor")

    def test_inserted_value_not_in_hosted_clear(self, pair):
        from repro.xmldb.serializer import serialize

        system, _ = pair
        system.insert_element("//patient[pname='Matt']/treat", "disease", "zika")
        hosted_xml = serialize(system.hosted.hosted_root)
        assert ">zika<" not in hosted_xml

    def test_insert_rebuilds_field_index(self, pair):
        system, oracle = pair
        plan_before = system.hosted.field_plans["disease"]
        system.insert_element("//patient[pname='Matt']/treat", "disease", "flu")
        plan_after = system.hosted.field_plans["disease"]
        assert "flu" in plan_after.ordered_values
        assert "flu" not in plan_before.ordered_values

    def test_insert_needs_unique_parent(self, pair):
        system, _ = pair
        with pytest.raises(UpdateError):
            system.insert_element("//treat", "disease", "flu")  # 3 matches

    def test_insert_into_encrypted_parent_rejected(self, pair):
        system, _ = pair
        with pytest.raises(UpdateError):
            system.insert_element(
                "//patient[pname='Betty']/insurance", "policy#", "1"
            )

    def test_repeated_inserts(self, pair):
        system, oracle = pair
        for index in range(4):
            system.insert_element(
                "//patient[pname='Matt']", "note", f"n{index}"
            )
            oracle_append_leaf(
                oracle, "//patient[pname='Matt']", "note", f"n{index}"
            )
        check(system, oracle, "//patient/note")
        check(system, oracle, "//patient[note='n2']/pname")


class TestUpdateValue:
    def test_update_plaintext_leaf(self, pair):
        system, oracle = pair
        system.update_value("//patient[pname='Matt']/age", "41")
        evaluate(oracle, "//patient[pname='Matt']/age")[0].children[0].value = "41"
        check(system, oracle, "//patient[age>40]/pname")
        check(system, oracle, "//patient/age")

    def test_update_encrypted_leaf(self, pair):
        system, oracle = pair
        system.update_value("//patient[pname='Betty']/SSN", "999999")
        evaluate(oracle, "//patient[pname='Betty']/SSN")[0].children[0].value = (
            "999999"
        )
        check(system, oracle, "//SSN")
        check(system, oracle, "//patient[SSN='999999']/pname")

    def test_updated_value_range_queries(self, pair):
        system, oracle = pair
        system.update_value("//patient[pname='Betty']/SSN", "999999")
        evaluate(oracle, "//patient[pname='Betty']/SSN")[0].children[0].value = (
            "999999"
        )
        check(system, oracle, "//patient[SSN>500000]/pname")

    def test_update_needs_unique_target(self, pair):
        system, _ = pair
        with pytest.raises(UpdateError):
            system.update_value("//age", "50")  # two matches


class TestDelete:
    def test_delete_encrypted_block(self, pair):
        system, oracle = pair
        blocks_before = system.hosted.block_count()
        system.delete_element("//patient[pname='Matt']/insurance")
        evaluate(oracle, "//patient[pname='Matt']/insurance")[0].detach()
        oracle.renumber()
        assert system.hosted.block_count() == blocks_before - 1
        check(system, oracle, "//insurance/policy#")
        check(system, oracle, "//insurance//@coverage")

    def test_delete_plaintext_subtree_with_nested_blocks(self, pair):
        system, oracle = pair
        system.delete_element("//patient[pname='Betty']")
        evaluate(oracle, "//patient[pname='Betty']")[0].detach()
        oracle.renumber()
        check(system, oracle, "//pname")
        check(system, oracle, "//SSN")
        check(system, oracle, "//disease")
        check(system, oracle, "//insurance/policy#")

    def test_delete_refreshes_value_index(self, pair):
        system, oracle = pair
        system.delete_element("//patient[pname='Matt']/treat")
        evaluate(oracle, "//patient[pname='Matt']/treat")[0].detach()
        oracle.renumber()
        check(system, oracle, "//treat[disease='leukemia']/doctor")
        check(system, oracle, "//disease")

    def test_delete_root_rejected(self, pair):
        system, _ = pair
        with pytest.raises(UpdateError):
            system.delete_element("/hospital")


class TestUpdateSafety:
    def test_updates_require_secure_hosting(self, healthcare_doc, healthcare_scs):
        system = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="leaf", secure=False
        )
        with pytest.raises(UpdateError):
            system.insert_element("//patient[pname='Matt']", "x", "1")

    def test_mixed_update_sequence_stays_exact(self, pair):
        """A longer randomized-ish sequence keeps every query exact."""
        system, oracle = pair
        operations = [
            ("insert", "//patient[pname='Matt']/treat", "disease", "flu"),
            ("update", "//patient[pname='Matt']/age", "41", None),
            ("insert", "//patient[pname='Betty']", "phone", "555-0000"),
            ("update", "//patient[pname='Betty']/SSN", "111111", None),
            ("delete", "//patient[pname='Matt']/insurance", None, None),
            ("insert", "//patient[pname='Matt']", "note", "check-up"),
        ]
        for op, path, tag_or_value, value in operations:
            if op == "insert":
                system.insert_element(path, tag_or_value, value)
                oracle_append_leaf(oracle, path, tag_or_value, value)
            elif op == "update":
                system.update_value(path, tag_or_value)
                evaluate(oracle, path)[0].children[0].value = tag_or_value
                oracle.renumber()
            else:
                system.delete_element(path)
                evaluate(oracle, path)[0].detach()
                oracle.renumber()
        for query in (
            "//pname",
            "//SSN",
            "//disease",
            "//patient[age>40]/pname",
            "//patient[SSN='111111']/pname",
            "//treat[disease='flu']/doctor",
            "//insurance/policy#",
            "//note",
        ):
            check(system, oracle, query)

    def test_aggregate_after_updates(self, pair):
        system, oracle = pair
        system.insert_element("//patient[pname='Matt']/treat", "disease", "flu")
        oracle_append_leaf(
            oracle, "//patient[pname='Matt']/treat", "disease", "flu"
        )
        assert system.aggregate("//disease", "count") == 4
        assert system.aggregate("//disease", "min", mode="server") == (
            system.aggregate("//disease", "min")
        )
