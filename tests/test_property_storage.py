"""Property-based persistence round-trips on random documents."""

import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.client import canonical_node
from repro.core.storage import load_system, save_system
from repro.core.system import SecureXMLSystem
from repro.core.constraints import SecurityConstraint
from repro.xmldb.builder import TreeBuilder
from repro.xpath.evaluator import evaluate

MASTER = b"property-storage-master-key-32b!"

_TAGS = ["rec", "grp"]
_LEAVES = ["alpha", "beta"]
_VALUES = ["v1", "v2", "7", "42"]


@st.composite
def documents(draw):
    builder = TreeBuilder("root")
    for _ in range(draw(st.integers(1, 4))):
        with builder.element(draw(st.sampled_from(_TAGS))):
            for _ in range(draw(st.integers(1, 3))):
                builder.leaf(
                    draw(st.sampled_from(_LEAVES)),
                    draw(st.sampled_from(_VALUES)),
                )
    return builder.document()


class TestStorageRoundTripProperty:
    @given(documents(), st.sampled_from(["opt", "top"]))
    @settings(max_examples=12, deadline=None)
    def test_reload_answers_identically(self, document, scheme):
        constraints = [
            SecurityConstraint.parse("//rec:(//alpha, //beta)"),
        ]
        system = SecureXMLSystem.host(
            document, constraints, scheme=scheme, master_key=MASTER
        )
        queries = [
            "//alpha",
            "//rec[alpha='v1']/beta",
            "/root/grp/beta",
        ]
        with tempfile.TemporaryDirectory() as directory:
            save_system(system, directory)
            reloaded = load_system(directory, MASTER)
            for query in queries:
                expected = sorted(
                    canonical_node(n) for n in evaluate(document, query)
                )
                assert reloaded.query(query).canonical() == expected, query

    @given(documents())
    @settings(max_examples=8, deadline=None)
    def test_saved_metadata_sizes_match(self, document):
        constraints = [
            SecurityConstraint.parse("//rec:(//alpha, //beta)"),
        ]
        system = SecureXMLSystem.host(
            document, constraints, scheme="opt", master_key=MASTER
        )
        with tempfile.TemporaryDirectory() as directory:
            save_system(system, directory)
            reloaded = load_system(directory, MASTER)
        assert reloaded.hosted.block_count() == system.hosted.block_count()
        assert (
            reloaded.hosted.value_index.total_entries()
            == system.hosted.value_index.total_entries()
        )
        assert len(reloaded.hosted.structural_index.all_entries()) == len(
            system.hosted.structural_index.all_entries()
        )
