"""Shared fixtures for the experiment benchmarks.

Hosting a database is expensive relative to a query, so the hosted systems
are built once per session and shared.  Sizes are chosen so the whole
benchmark suite reproduces every figure in a few minutes on a laptop; the
generators take explicit scale parameters if larger runs are wanted.
"""

from __future__ import annotations

import os

import pytest

from repro.core.system import SecureXMLSystem
from repro.workloads.nasa import build_nasa_database, nasa_constraints
from repro.workloads.queries import QueryWorkload
from repro.workloads.xmark import build_xmark_database, xmark_constraints

SCHEMES = ("top", "sub", "app", "opt")

#: scale knobs (override with environment variables for bigger runs)
XMARK_PERSONS = int(os.environ.get("REPRO_XMARK_PERSONS", "100"))
NASA_DATASETS = int(os.environ.get("REPRO_NASA_DATASETS", "70"))
QUERIES_PER_CLASS = int(os.environ.get("REPRO_QUERIES_PER_CLASS", "6"))
#: measurement trials per benchmark point — the paper's protocol uses 5
#: (trimmed mean); CI sets REPRO_BENCH_TRIALS=1 to run the suite fast
BENCH_TRIALS = max(1, int(os.environ.get("REPRO_BENCH_TRIALS", "5")))

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def write_result(name: str, text: str) -> None:
    """Persist a rendered experiment table under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    print()
    print(text)


@pytest.fixture(scope="session")
def bench_trials() -> int:
    """Trials per measurement (REPRO_BENCH_TRIALS, default 5)."""
    return BENCH_TRIALS


@pytest.fixture(autouse=True)
def quiesce_gc():
    """Keep collector pauses out of the measured sections.

    Same rationale as ``timeit``'s default ``gc.disable()``: a cyclic-GC
    pass triggered mid-measurement charges an unrelated scheme with a
    multi-millisecond pause and flips the tight shape assertions.
    Freezing (rather than disabling) keeps collection alive for garbage
    created during the test while taking the long-lived hosted systems
    and caches out of every scan.
    """
    import gc

    gc.collect()
    gc.freeze()
    yield
    gc.unfreeze()


@pytest.fixture(scope="session")
def xmark_doc():
    return build_xmark_database(person_count=XMARK_PERSONS, seed=41)


@pytest.fixture(scope="session")
def nasa_doc():
    return build_nasa_database(dataset_count=NASA_DATASETS, seed=42)


@pytest.fixture(scope="session")
def xmark_systems(xmark_doc):
    constraints = xmark_constraints()
    return {
        kind: SecureXMLSystem.host(xmark_doc, constraints, scheme=kind)
        for kind in SCHEMES
    }


@pytest.fixture(scope="session")
def nasa_systems(nasa_doc):
    constraints = nasa_constraints()
    return {
        kind: SecureXMLSystem.host(nasa_doc, constraints, scheme=kind)
        for kind in SCHEMES
    }


@pytest.fixture(scope="session")
def xmark_queries(xmark_doc):
    return QueryWorkload(
        xmark_doc, seed=51, per_class=QUERIES_PER_CLASS
    ).by_class()


@pytest.fixture(scope="session")
def nasa_queries(nasa_doc):
    return QueryWorkload(
        nasa_doc, seed=52, per_class=QUERIES_PER_CLASS
    ).by_class()
