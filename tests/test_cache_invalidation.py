"""Regression tests for epoch-based cache invalidation.

Every incremental update (insert/delete/update-value) bumps the hosted
database's scheme epoch, and every cache in the hot path — the client's
translated-plan, decrypted-block and fragment-tree caches, the server's
fragment cache, the structural index's sorted interval arrays — is keyed
or gated on that epoch.  A repeated query after an update must therefore
be answered fresh and exactly, never from stale cached state.
"""

import pytest

from repro.core.system import SecureXMLSystem
from repro.perf import counters


@pytest.fixture
def system(healthcare_doc, healthcare_scs):
    return SecureXMLSystem.host(healthcare_doc, healthcare_scs, scheme="opt")


class TestEpochBumping:
    def test_insert_bumps_epoch(self, system):
        before = system.hosted.epoch
        system.insert_element("//patient[pname='Matt']", "phone", "555-1234")
        assert system.hosted.epoch == before + 1

    def test_delete_bumps_epoch(self, system):
        before = system.hosted.epoch
        system.delete_element("//patient[pname='Matt']/treat")
        assert system.hosted.epoch > before

    def test_update_value_bumps_epoch(self, system):
        before = system.hosted.epoch
        system.update_value("//patient[pname='Matt']/pname", "Matthew")
        assert system.hosted.epoch > before

    def test_epoch_invalidation_counter(self, system):
        before = counters.epoch_invalidations
        system.insert_element("//patient[pname='Matt']", "phone", "555-0000")
        assert counters.epoch_invalidations > before


class TestInvalidationCorrectness:
    def test_insert_visible_after_cached_query(self, system):
        query = "//patient[pname='Matt']/phone"
        assert system.query(query).values() == []
        # Warm every cache layer on the miss-shaped answer.
        assert system.query(query).values() == []
        system.insert_element("//patient[pname='Matt']", "phone", "555-1234")
        assert system.query(query).values() == ["555-1234"]

    def test_delete_visible_after_cached_query(self, system):
        query = "//patient[pname='Matt']//disease"
        first = system.query(query)
        assert len(first) > 0
        assert system.query(query).canonical() == first.canonical()
        system.delete_element("//patient[pname='Matt']/treat")
        assert system.query(query).values() == []

    def test_update_value_visible_after_cached_query(self, system):
        query = "//patient[pname='Matt']/pname"
        assert system.query(query).values() == ["Matt"]
        system.update_value("//patient[pname='Matt']/pname", "Matthew")
        # A stale cache would still answer ["Matt"]; fresh state has no
        # pname='Matt' left and the new value shows under its new name.
        assert system.query(query).values() == []
        assert system.query("//patient[pname='Matthew']/pname").values() == [
            "Matthew"
        ]

    def test_plan_cache_refilled_after_update(self, system):
        """The old plan is unusable (epoch key) and a fresh one is cached."""
        query = "//patient/pname"
        system.query(query)
        system.query(query)
        system.insert_element("//patient[pname='Matt']", "phone", "555-9999")
        before = counters.snapshot()
        system.query(query)  # epoch changed: must re-translate
        system.query(query)  # and the new plan is cached again
        delta = counters.delta_since(before)
        assert delta["plan_cache_misses"] == 1
        assert delta["plan_cache_hits"] == 1

    def test_client_caches_flushed_on_epoch_change(self, system):
        """Decrypted-tree/block caches never serve pre-update payloads."""
        query = "//patient[pname='Matt']//disease"
        baseline = system.query(query).values()
        assert baseline  # covered field: answered via encrypted blocks
        system.query(query)
        system.update_value(
            "//patient[pname='Matt']/treat/disease", "updated-disease"
        )
        before = counters.snapshot()
        answer = system.query(query)
        delta = counters.delta_since(before)
        assert answer.values() == ["updated-disease"]
        assert delta["tree_cache_hits"] == 0
        assert delta["block_cache_hits"] == 0

    def test_repeated_batch_across_update(self, system):
        """execute_many answers reflect the update on the very next batch."""
        queries = ["//patient/pname", "//patient[pname='Matt']/phone"]
        first = system.execute_many(queries)
        assert first[1].values() == []
        system.insert_element("//patient[pname='Matt']", "phone", "555-4321")
        second = system.execute_many(queries)
        assert second[1].values() == ["555-4321"]
        assert first[0].canonical() == second[0].canonical()


@pytest.fixture
def columnar_system(healthcare_doc, healthcare_scs):
    return SecureXMLSystem.host(
        healthcare_doc, healthcare_scs, scheme="opt", backend="columnar"
    )


class TestColumnarInvalidation:
    """The plane snapshot cache obeys the same epoch discipline.

    The columnar backend answers joins from a flat-array snapshot of the
    structural index (``StructuralIndex.columnar()``).  An update that
    mutates the entry list must drop that snapshot — and the per-tag
    slice memo living inside it — or a repeated query would sweep stale
    planes and resurrect deleted intervals.
    """

    def test_insert_visible_after_cached_query(self, columnar_system):
        query = "//patient[pname='Matt']/phone"
        assert columnar_system.query(query).values() == []
        assert columnar_system.query(query).values() == []
        columnar_system.insert_element(
            "//patient[pname='Matt']", "phone", "555-1234"
        )
        assert columnar_system.query(query).values() == ["555-1234"]

    def test_delete_visible_after_cached_query(self, columnar_system):
        query = "//patient[pname='Matt']//disease"
        first = columnar_system.query(query)
        assert len(first) > 0
        assert columnar_system.query(query).canonical() == first.canonical()
        columnar_system.delete_element("//patient[pname='Matt']/treat")
        assert columnar_system.query(query).values() == []

    def test_update_value_visible_after_cached_query(self, columnar_system):
        query = "//patient[pname='Matt']/pname"
        assert columnar_system.query(query).values() == ["Matt"]
        columnar_system.update_value(
            "//patient[pname='Matt']/pname", "Matthew"
        )
        assert columnar_system.query(query).values() == []
        assert columnar_system.query(
            "//patient[pname='Matthew']/pname"
        ).values() == ["Matthew"]

    def test_update_drops_and_rebuilds_plane_snapshot(self, columnar_system):
        """The epoch bump evicts the cached planes; the next query pays
        exactly one rebuild (a ``columnar_cache_misses`` increment)."""
        index = columnar_system.hosted.structural_index
        columnar_system.query("//patient/pname")
        assert index.columnar_cached() is not None
        columnar_system.update_value(
            "//patient[pname='Matt']/pname", "Matthew"
        )
        assert index.columnar_cached() is None
        before = counters.snapshot()
        columnar_system.query("//patient/pname")
        delta = counters.delta_since(before)
        assert delta.get("columnar_cache_misses", 0) >= 1
        assert index.columnar_cached() is not None

    def test_warm_queries_reuse_the_snapshot(self, columnar_system):
        """Without an update in between, repeat queries hit the cache."""
        columnar_system.query("//patient/pname")
        before = counters.snapshot()
        columnar_system.query("//patient/age")
        delta = counters.delta_since(before)
        assert delta.get("columnar_cache_misses", 0) == 0
        assert delta.get("columnar_cache_hits", 0) >= 1

    def test_answers_match_object_backend_across_updates(
        self, system, columnar_system
    ):
        """Byte identity holds through a full update cycle."""
        probes = [
            "//patient/pname",
            "//patient[pname='Matt']//disease",
            "//insurance/@coverage",
        ]
        for probe in probes:
            assert (
                system.query(probe).canonical()
                == columnar_system.query(probe).canonical()
            )
        for target in (system, columnar_system):
            target.update_value(
                "//patient[pname='Matt']/treat/disease", "updated-disease"
            )
            target.insert_element(
                "//patient[pname='Matt']", "phone", "555-1234"
            )
        probes.append("//patient[pname='Matt']/phone")
        for probe in probes:
            assert (
                system.query(probe).canonical()
                == columnar_system.query(probe).canonical()
            )
