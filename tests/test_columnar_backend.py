"""The columnar DSI backend: planes, kernels, knobs, and byte identity.

The backend contract is representational only: re-encoding the DSI entry
list as flat sorted plane arrays and answering structural joins with
galloping merge sweeps may change *how* a query is scheduled, never
*what* it answers.  Every test here pins some face of that contract —
plane geometry against the object rows, the gallop/sweep kernels against
bisect references, end-to-end answer bytes across backends × parallelism
× cluster shapes, and identity under seeded wire faults.
"""

import json
import os
import random
from bisect import bisect_right

import pytest

from repro.core.columnar import (
    BACKEND_ENV,
    ColumnarPlanes,
    LazyStructuralIndex,
    _gallop_right,
    backend_from_env,
    resolve_backend,
    sweep_descendant,
)
from repro.core.colstore import (
    COLSTORE_VERSION,
    ColstoreError,
    load_columns,
    pack_columns,
    unpack_columns,
)
from repro.core.dsi import assign_intervals
from repro.core.parallel import ParallelConfig
from repro.core.storage import load_system, save_system
from repro.core.system import QueryFailedError, SecureXMLSystem
from repro.cluster.placement import ClusterConfig, build_placement
from repro.crypto.prf import DeterministicRandom
from repro.netsim import FaultPolicy, FaultyChannel

MASTER = b"columnar-test-master-key-32bytes"

#: Per-workload probe sets exercising every axis kind the matcher has:
#: descendant, child, attribute, value predicates (plaintext + encrypted),
#: wildcards, and empty answers.
WORKLOAD_QUERIES = {
    "healthcare": [
        "//patient/pname",
        "//patient[pname='Betty']/SSN",
        "//treat/doctor",
        "//insurance//@coverage",
        "//patient/*",
        "//patient[age>36]/pname",
        "/hospital/patient/age",
        "//unicorn",
    ],
    "xmark": [
        "//person/name",
        "//auction/itemref",
        "//person/address/street",
        "//open_auctions//current",
    ],
    "nasa": [
        "//dataset/altname",
        "//author/last",
        "//distribution/publisher",
        "//dataset/@subject",
    ],
}


def _host(doc, scs, backend, **kwargs):
    return SecureXMLSystem.host(
        doc, scs, scheme="opt", backend=backend, **kwargs
    )


class TestBackendKnob:
    def test_none_defers_to_env(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert resolve_backend(None) == "object"
        monkeypatch.setenv(BACKEND_ENV, "columnar")
        assert resolve_backend(None) == "columnar"

    def test_strings_are_case_insensitive(self):
        assert resolve_backend("Columnar") == "columnar"
        assert resolve_backend(" OBJECT ") == "object"

    def test_unknown_string_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("vertical")

    def test_non_string_raises_type_error(self):
        with pytest.raises(TypeError, match="backend must be"):
            resolve_backend(42)

    def test_bad_env_value_raises(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "sideways")
        with pytest.raises(ValueError, match=BACKEND_ENV):
            backend_from_env()

    def test_env_reaches_the_server(
        self, monkeypatch, healthcare_doc, healthcare_scs
    ):
        monkeypatch.setenv(BACKEND_ENV, "columnar")
        system = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="opt"
        )
        assert system.backend == "columnar"
        assert system.server.backend == "columnar"

    def test_explicit_argument_beats_env(
        self, monkeypatch, healthcare_doc, healthcare_scs
    ):
        monkeypatch.setenv(BACKEND_ENV, "columnar")
        system = _host(healthcare_doc, healthcare_scs, "object")
        assert system.backend == "object"


class TestPlaneGeometry:
    """from_index planes are a faithful flat view of the object rows."""

    @pytest.fixture
    def hosted(self, healthcare_doc, healthcare_scs):
        return _host(healthcare_doc, healthcare_scs, "object").hosted

    def test_global_order_is_entry_order(self, hosted):
        index = hosted.structural_index
        planes = ColumnarPlanes.from_index(index)
        entries = index.all_entries()
        assert planes.entry_count == len(entries)
        for position, entry in enumerate(entries):
            assert planes.lows[position] == entry.interval.low
            assert planes.highs[position] == entry.interval.high
            assert planes.key_of(position) == entry.key
            assert planes.block_of(position) == entry.block_id
            assert planes.members_of(position) == entry.member_ids
            assert planes.value_of(position) == entry.plaintext_value

    def test_parent_plane_mirrors_parent_pointers(self, hosted):
        index = hosted.structural_index
        planes = ColumnarPlanes.from_index(index)
        entries = index.all_entries()
        position_of = {id(e): i for i, e in enumerate(entries)}
        for position, entry in enumerate(entries):
            parent = planes.parents[position]
            if entry.parent is None:
                assert parent == -1
            else:
                assert parent == position_of[id(entry.parent)]

    def test_tag_slices_cover_per_key_lists_in_low_order(self, hosted):
        index = hosted.structural_index
        planes = ColumnarPlanes.from_index(index)
        for key, rows in index.table.items():
            ids, lows = planes.tag_slice(key)
            assert len(ids) == len(rows)
            assert list(lows) == sorted(r.interval.low for r in rows)
            assert [planes.key_of(i) for i in ids] == [key] * len(rows)

    def test_block_table_round_trips(self, hosted):
        index = hosted.structural_index
        planes = ColumnarPlanes.from_index(index)
        assert planes.block_table_dict() == index.block_table

    def test_group_cutpoints_match_object_path(self, hosted):
        index = hosted.structural_index
        planes = ColumnarPlanes.from_index(index)
        for groups in (1, 2, 4, 8, 16):
            assert planes.group_cutpoints(groups) == index.group_cutpoints(
                groups
            )

    def test_hosted_node_lows_match(self, hosted):
        index = hosted.structural_index
        planes = ColumnarPlanes.from_index(index)
        expected = {
            e.hosted_node.node_id: e.interval.low
            for e in index.all_entries()
            if e.hosted_node is not None
        }
        assert planes.hosted_node_lows() == expected

    def test_placement_is_backend_invariant(self, hosted):
        config = ClusterConfig(shards=4, replicas=2, seed=3)
        object_map = build_placement(hosted, config, backend="object")
        columnar_map = build_placement(hosted, config, backend="columnar")
        assert object_map.signature() == columnar_map.signature()
        assert object_map.groups == columnar_map.groups


class TestBulkLoad:
    """from_records (the storage stream) agrees with from_index per key."""

    @pytest.fixture
    def index(self, healthcare_doc, healthcare_scs):
        return _host(
            healthcare_doc, healthcare_scs, "object"
        ).hosted.structural_index

    def _records(self, index):
        """The exact ``server_meta['dsi']`` schema storage writes."""
        entries = index.all_entries()
        entry_index = {id(e): i for i, e in enumerate(entries)}
        return [
            {
                "key": e.key,
                "low": e.interval.low,
                "high": e.interval.high,
                "members": list(e.member_ids),
                "block": e.block_id,
                "parent": entry_index.get(id(e.parent)),
                "value": e.plaintext_value,
                "hosted_id": (
                    e.hosted_node.node_id
                    if e.hosted_node is not None
                    else None
                ),
            }
            for e in entries
        ]

    def test_per_key_equivalence_with_from_index(self, index):
        built = ColumnarPlanes.from_index(index)
        loaded = ColumnarPlanes.from_records(
            self._records(index),
            {
                block_id: (interval.low, interval.high)
                for block_id, interval in index.block_table.items()
            },
        )
        assert loaded.entry_count == built.entry_count
        assert list(loaded.lows) == list(built.lows)
        assert list(loaded.highs) == list(built.highs)
        assert list(loaded.parents) == list(built.parents)
        # Key *numbering* may differ (first-appearance vs table order);
        # per-key slice contents — what byte identity depends on — must not.
        assert set(loaded.keys) == set(built.keys)
        for key in built.keys:
            built_ids, built_lows = built.tag_slice(key)
            loaded_ids, loaded_lows = loaded.tag_slice(key)
            assert list(loaded_ids) == list(built_ids)
            assert list(loaded_lows) == list(built_lows)
        for position in range(built.entry_count):
            assert loaded.key_of(position) == built.key_of(position)
            assert loaded.members_of(position) == built.members_of(position)
            assert loaded.value_of(position) == built.value_of(position)
        assert loaded.block_table_dict() == built.block_table_dict()

    def test_hydrate_entries_rebuilds_the_object_rows(self, index):
        planes = ColumnarPlanes.from_index(index)
        node_for = {
            e.hosted_node.node_id: e.hosted_node
            for e in index.all_entries()
            if e.hosted_node is not None
        }
        entries, table = planes.hydrate_entries(node_for.get)
        originals = index.all_entries()
        assert len(entries) == len(originals)
        for rebuilt, original in zip(entries, originals):
            assert rebuilt.key == original.key
            assert rebuilt.interval == original.interval
            assert rebuilt.member_ids == original.member_ids
            assert rebuilt.block_id == original.block_id
            assert rebuilt.plaintext_value == original.plaintext_value
            assert rebuilt.hosted_node is original.hosted_node
        assert set(table) == set(index.table)


class TestSweepKernels:
    """The galloping primitives against their bisect/brute references."""

    def test_gallop_right_matches_bisect(self):
        rng = random.Random(7)
        for _ in range(50):
            lows = sorted(rng.uniform(0, 1) for _ in range(rng.randint(0, 40)))
            target = rng.uniform(-0.1, 1.1)
            start = rng.randint(0, max(0, len(lows)))
            expected = max(start, bisect_right(lows, target, start))
            assert _gallop_right(lows, target, start) == expected

    def test_gallop_right_edges(self):
        assert _gallop_right([], 0.5, 0) == 0
        assert _gallop_right([0.1, 0.2], 0.05, 0) == 0
        assert _gallop_right([0.1, 0.2], 0.3, 0) == 2
        assert _gallop_right([0.1, 0.2], 0.15, 2) == 2

    def test_sweep_descendant_matches_brute_force(self):
        rng = random.Random(13)
        for _ in range(30):
            n = rng.randint(1, 30)
            spans = []
            for _ in range(n):
                low = rng.uniform(0, 1)
                spans.append((low, low + rng.uniform(0.001, 0.5)))
            lows = [s[0] for s in spans]
            highs = [s[1] for s in spans]
            match_lows = sorted(
                rng.uniform(0, 1.5) for _ in range(rng.randint(0, 20))
            )
            # Candidates arrive as concatenated per-key low-sorted runs.
            split = rng.randint(0, n)
            ids = sorted(range(split), key=lambda i: lows[i]) + sorted(
                range(split, n), key=lambda i: lows[i]
            )
            survivors = sweep_descendant(ids, lows, highs, match_lows)
            expected = [
                i
                for i in ids
                if any(lows[i] < m < highs[i] for m in match_lows)
            ]
            assert survivors == expected


class TestByteIdentity:
    """Same answer bytes on every workload × parallelism × cluster shape."""

    def _expected(self, doc, scs, queries):
        system = _host(doc, scs, "object")
        return [
            (system.query(q).canonical(), dict(
                system.last_trace.candidate_counts
            ))
            for q in queries
        ]

    def _check(self, doc, scs, queries, expected, **kwargs):
        system = _host(doc, scs, "columnar", **kwargs)
        try:
            for query, (answer, candidates) in zip(queries, expected):
                result = system.query(query)
                assert result.canonical() == answer, (query, kwargs)
                assert (
                    dict(system.last_trace.candidate_counts) == candidates
                ), (query, kwargs)
        finally:
            system.close()

    @pytest.mark.parametrize("workload", sorted(WORKLOAD_QUERIES))
    def test_serial_parallel_and_cluster_agree(self, workload, request):
        if workload == "healthcare":
            doc = request.getfixturevalue("healthcare_doc")
            scs = request.getfixturevalue("healthcare_scs")
        else:
            doc = request.getfixturevalue(f"{workload}_doc")
            scs = request.getfixturevalue(f"{workload}_scs")
        queries = WORKLOAD_QUERIES[workload]
        expected = self._expected(doc, scs, queries)
        self._check(doc, scs, queries, expected)
        self._check(
            doc, scs, queries, expected,
            parallel=ParallelConfig(workers=4, backend="thread"),
        )
        self._check(
            doc, scs, queries, expected,
            cluster=ClusterConfig(shards=1, replicas=1),
        )
        self._check(
            doc, scs, queries, expected,
            cluster=ClusterConfig(shards=4, replicas=2),
        )

    def test_low_shard_threshold_still_identical(
        self, healthcare_doc, healthcare_scs
    ):
        """Force the sharded sweep path even on the tiny document."""
        queries = WORKLOAD_QUERIES["healthcare"]
        expected = self._expected(healthcare_doc, healthcare_scs, queries)
        self._check(
            healthcare_doc, healthcare_scs, queries, expected,
            parallel=ParallelConfig(workers=4, backend="thread", min_shard=2),
        )


class TestFaultSweepIdentity:
    """Under a seeded faulty wire both backends answer exactly or fail
    with the same typed error — the backend never changes wire bytes."""

    QUERIES = (
        "//patient[pname='Betty']/SSN",
        "//treat/doctor",
        "//patient[age>36]/pname",
    )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_seeded_faults_preserve_identity(
        self, seed, healthcare_doc, healthcare_scs
    ):
        rates = {"drop": 0.2, "corrupt": 0.2}
        outcomes = {}
        for backend in ("object", "columnar"):
            policy = FaultPolicy.symmetric(seed=seed, **rates)
            system = SecureXMLSystem.host(
                healthcare_doc,
                healthcare_scs,
                scheme="opt",
                backend=backend,
                channel=FaultyChannel(policy=policy),
            )
            rows = []
            for query in self.QUERIES:
                try:
                    rows.append(("ok", system.query(query).canonical()))
                except QueryFailedError:
                    rows.append(("failed", None))
            outcomes[backend] = rows
        # Identical fault schedule + identical wire bytes ⇒ identical
        # per-query outcomes, successes and typed failures alike.
        assert outcomes["object"] == outcomes["columnar"]


class TestStorageRoundtrip:
    @pytest.fixture
    def saved(self, tmp_path, healthcare_doc, healthcare_scs):
        system = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="opt", master_key=MASTER
        )
        directory = str(tmp_path / "hosting")
        save_system(system, directory)
        return directory, system

    def test_columnar_load_is_lazy(self, saved):
        directory, original = saved
        loaded = load_system(directory, MASTER, backend="columnar")
        index = loaded.hosted.structural_index
        assert isinstance(index, LazyStructuralIndex)
        assert not index.hydrated
        for query in WORKLOAD_QUERIES["healthcare"]:
            assert (
                loaded.query(query).canonical()
                == original.query(query).canonical()
            )
        # The whole probe set ran off the mmapped planes.
        assert not index.hydrated

    def test_update_hydrates_and_stays_correct(self, saved):
        directory, _ = saved
        loaded = load_system(directory, MASTER, backend="columnar")
        index = loaded.hosted.structural_index
        loaded.update_value("//patient[pname='Betty']/SSN", "555555")
        assert index.hydrated
        assert loaded.query("//patient[pname='Betty']/SSN").values() == [
            "555555"
        ]

    def test_hydrated_system_resaves_and_reloads(self, saved, tmp_path):
        directory, _ = saved
        loaded = load_system(directory, MASTER, backend="columnar")
        loaded.update_value("//patient[pname='Betty']/SSN", "999999")
        second = str(tmp_path / "second")
        save_system(loaded, second)
        again = load_system(second, MASTER, backend="columnar")
        assert again.query("//patient[pname='Betty']/SSN").values() == [
            "999999"
        ]

    def test_object_load_ignores_column_files(self, saved):
        directory, original = saved
        loaded = load_system(directory, MASTER, backend="object")
        assert not isinstance(
            loaded.hosted.structural_index, LazyStructuralIndex
        )
        probe = "//patient/pname"
        assert (
            loaded.query(probe).canonical()
            == original.query(probe).canonical()
        )


class TestColstoreFormat:
    @pytest.fixture
    def planes(self, healthcare_doc, healthcare_scs):
        index = _host(
            healthcare_doc, healthcare_scs, "object"
        ).hosted.structural_index
        return ColumnarPlanes.from_index(index)

    def test_pack_unpack_round_trip(self, planes):
        manifest, blob = pack_columns(planes)
        assert manifest["version"] == COLSTORE_VERSION
        assert manifest["entry_count"] == planes.entry_count
        restored = unpack_columns(manifest, blob)
        assert list(restored.lows) == list(planes.lows)
        assert list(restored.highs) == list(planes.highs)
        assert restored.tag_slices == planes.tag_slices
        assert restored.block_table_dict() == planes.block_table_dict()

    def test_columns_are_eight_byte_aligned(self, planes):
        manifest, _ = pack_columns(planes)
        for name, column in manifest["columns"].items():
            assert column["offset"] % 8 == 0, name

    def test_future_version_rejected(self, planes):
        manifest, blob = pack_columns(planes)
        manifest["version"] = COLSTORE_VERSION + 1
        with pytest.raises(ColstoreError, match="version"):
            unpack_columns(manifest, blob)

    def test_truncated_blob_rejected(self, planes):
        manifest, blob = pack_columns(planes)
        with pytest.raises(ColstoreError):
            unpack_columns(manifest, blob[: len(blob) // 2])

    def test_foreign_endianness_falls_back_to_byteswap(self, planes):
        import sys

        manifest, blob = pack_columns(planes)
        manifest = dict(manifest)
        manifest["byteorder"] = (
            "big" if sys.byteorder == "little" else "little"
        )
        swapped = bytearray(blob)
        for column in manifest["columns"].values():
            typecode = column["typecode"]
            if typecode is None:
                continue
            width = {"d": 8, "q": 8, "b": 1}[typecode]
            if width == 1:
                continue
            start, count = column["offset"], column["count"]
            for i in range(count):
                cell = slice(start + i * width, start + (i + 1) * width)
                swapped[cell] = bytes(reversed(swapped[cell]))
        restored = unpack_columns(manifest, bytes(swapped))
        assert list(restored.lows) == list(planes.lows)
        assert list(restored.parents) == list(planes.parents)

    def test_load_columns_uses_mmap(self, planes, tmp_path):
        import mmap

        directory = str(tmp_path)
        manifest, blob = pack_columns(planes)
        with open(os.path.join(directory, "columns.json"), "w") as f:
            json.dump(manifest, f)
        with open(os.path.join(directory, "columns.bin"), "wb") as f:
            f.write(blob)
        loaded = load_columns(directory)
        assert isinstance(loaded.source, mmap.mmap)
        assert list(loaded.lows) == list(planes.lows)

    def test_load_columns_bad_json_is_colstore_error(self, planes, tmp_path):
        directory = str(tmp_path)
        manifest, blob = pack_columns(planes)
        with open(os.path.join(directory, "columns.json"), "w") as f:
            f.write("{not json")
        with open(os.path.join(directory, "columns.bin"), "wb") as f:
            f.write(blob)
        with pytest.raises(ColstoreError):
            load_columns(directory)


class TestIntervalUnderflowDiagnostic:
    def test_deep_chain_reports_depth_and_remedy(self):
        from repro.xmldb.node import Document, Element

        root = Element("chain")
        cursor = root
        for level in range(120):
            child = Element(f"level{level}")
            cursor.append(child)
            cursor = child
        document = Document(root)
        weights = DeterministicRandom(b"w" * 16, "dsi")
        with pytest.raises(ValueError) as excinfo:
            assign_intervals(document, weights)
        message = str(excinfo.value)
        assert "underflowed" in message
        assert "depth" in message
        assert "fanout" in message
        assert "bulk-load" in message
        assert "regroup" in message

    def test_shallow_document_is_fine(self, healthcare_doc):
        weights = DeterministicRandom(b"w" * 16, "dsi")
        intervals = assign_intervals(healthcare_doc, weights)
        assert intervals
