"""Typed errors for the serving layer, and their wire representation.

The in-process pipeline's whole failure model is *typed*: a tampered
envelope raises :class:`TamperedResponseError`, a rollback raises
:class:`RollbackDetectedError`, a dropped transfer raises
:class:`TransferDropped`, and the retry loop keys on those types.  For
the socket path to be a drop-in transport, a server-side exception must
arrive at the remote client as the *same type* — so an ``OP_ERROR``
frame carries ``{"error": <registered name>, "message": ...}`` and the
client re-raises through the registry below.

Two rejection types are native to the serving layer and deliberately
subclass :class:`TransferDropped`:

* :class:`BackpressureRejected` — the bounded in-flight queue was full;
* :class:`ServerDraining` — the server is in graceful shutdown.

``TransferDropped`` is already in the system's retryable set, so a
remote :class:`~repro.core.system.SecureXMLSystem` absorbs both with
its existing backoff loop — a full queue looks exactly like a lossy
wire, which is the honest model for it.
"""

from __future__ import annotations

import json

from repro.core.integrity import (
    FreshnessError,
    IntegrityError,
    ReplayedCommandError,
    RollbackDetectedError,
    StaleStateError,
    TamperedRequestError,
    TamperedResponseError,
)
from repro.core.system import QueryFailedError
from repro.core.updates import UpdateError
from repro.netsim.faults import TransferDropped
from repro.netsim.message import MessageDecodeError


class ServingError(RuntimeError):
    """Base for failures of the serving layer itself (not the pipeline)."""


class ProtocolError(ServingError):
    """The peer violated the framing/opcode contract."""


class UnknownTenantError(ServingError):
    """HELLO named a tenant this server does not host."""


class BackpressureRejected(TransferDropped):
    """Admission control refused the request: in-flight queue full.

    Retryable by construction (it *is* a dropped transfer from the
    system's point of view); the client's backoff loop gives the queue
    time to drain.
    """


class ServerDraining(TransferDropped):
    """The server is draining: no new requests, in-flight ones finish."""


class RequestTimeoutError(ServingError):
    """A client-side deadline expired with the request still in flight.

    Raised by the blocking facade only — the server may or may not have
    executed the operation, so this is deliberately *not* retryable
    (re-issuing a mutating command after a timeout could double-apply
    it); callers that know their operation is idempotent can retry
    explicitly.
    """


class RemoteServerError(ServingError):
    """A server-side error whose type is not in the shared registry.

    Surfacing it untyped (rather than guessing a registered type) keeps
    the exact-answer-or-typed-error invariant honest: the remote client
    never converts an unknown failure into one the retry loop would
    silently absorb.
    """


#: Exception types that cross the wire by name.  Both ends must agree on
#: this table; the name is the class name, which is stable API surface.
_REGISTERED: tuple[type[Exception], ...] = (
    # Integrity / freshness (the chaos and rollback suites key on these).
    IntegrityError,
    TamperedRequestError,
    TamperedResponseError,
    FreshnessError,
    ReplayedCommandError,
    RollbackDetectedError,
    StaleStateError,
    # Pipeline failures.
    QueryFailedError,
    UpdateError,
    MessageDecodeError,
    TransferDropped,
    # Serving-native rejections.
    ProtocolError,
    UnknownTenantError,
    BackpressureRejected,
    ServerDraining,
)

WIRE_ERRORS: dict[str, type[Exception]] = {
    cls.__name__: cls for cls in _REGISTERED
}


def encode_error(exc: Exception) -> bytes:
    """Serialize an exception into an ``OP_ERROR`` payload.

    Subclasses not individually registered fall back to the nearest
    registered base (e.g. :class:`ClusterDegradedError` travels as
    :class:`QueryFailedError`), which preserves the retry semantics the
    client's loop keys on even for types it has never imported.
    """
    name = type(exc).__name__
    if name not in WIRE_ERRORS:
        for base in type(exc).__mro__[1:]:
            if base.__name__ in WIRE_ERRORS:
                name = base.__name__
                break
        else:
            name = "RemoteServerError"
    return json.dumps(
        {"error": name, "message": str(exc)}, sort_keys=True
    ).encode("utf-8")


def decode_error(payload: bytes) -> Exception:
    """Rebuild the typed exception an ``OP_ERROR`` payload describes."""
    try:
        data = json.loads(payload.decode("utf-8"))
        name = data["error"]
        message = data.get("message", "")
    except (ValueError, KeyError, UnicodeDecodeError):
        return ProtocolError(f"undecodable error frame: {payload[:64]!r}")
    cls = WIRE_ERRORS.get(name)
    if cls is None:
        return RemoteServerError(f"{name}: {message}")
    return cls(message)
