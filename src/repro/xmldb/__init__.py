"""XML document model: tree nodes, parser, serializer, builder and statistics.

This package is the data substrate of the reproduction.  It deliberately does
not depend on ``xml.etree`` — the document model is built from scratch so that
hosted (partially encrypted) databases can mix ordinary element/text nodes
with :class:`~repro.xmldb.node.EncryptedBlockNode` placeholders, and so that
every node carries the stable document-order identity that the DSI index and
the structural-join machinery key on.
"""

from repro.xmldb.node import (
    Attribute,
    Document,
    Element,
    EncryptedBlockNode,
    Node,
    Text,
)
from repro.xmldb.parser import XMLParseError, parse_document, parse_fragment
from repro.xmldb.serializer import serialize
from repro.xmldb.builder import TreeBuilder

__all__ = [
    "Node",
    "Element",
    "Text",
    "Attribute",
    "Document",
    "EncryptedBlockNode",
    "parse_document",
    "parse_fragment",
    "XMLParseError",
    "serialize",
    "TreeBuilder",
]
