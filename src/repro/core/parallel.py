"""Parallel execution layer: worker pools, sharded filtering, knobs.

The paper's client/server split (§6, Fig. 8) leaves each query strictly
sequential: the server joins, then ships, then the client decrypts.  The
stages are independently schedulable — the server's structural join works
on public metadata while the client's decryption works on ciphertext it
already holds — so this module supplies the machinery to overlap them
without changing a byte of what the server learns:

* :class:`ParallelConfig` — the knob surface (``REPRO_WORKERS`` env /
  ``--workers`` CLI / ``parallel=`` API), including the ``parallel=False``
  escape hatch that preserves the exact serial behaviour;
* :class:`WorkerPool` — a lazy, ``concurrent.futures``-backed pool
  (thread- or process-backed) with order-preserving fan-out, so results
  are deterministically re-ordered to match serial execution;
* :func:`filter_shards` — order-preserving parallel filtering over the
  interval-sorted DSI candidate lists (the server's "sharded evaluation"
  primitive; the contiguous spans come from :func:`shard_spans`).

Everything here is *mechanism*; policy (when to stream, when to shard)
lives with the callers in :mod:`repro.core.system`, :mod:`repro.core.server`
and :mod:`repro.core.client`.
"""

from __future__ import annotations

import os
from concurrent.futures import (
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence, TypeVar

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.obs import Observability

T = TypeVar("T")
R = TypeVar("R")

#: Environment knob read by :meth:`ParallelConfig.from_env`.
WORKERS_ENV = "REPRO_WORKERS"

#: Worker count used for ``parallel=True`` when the environment is silent.
DEFAULT_WORKERS = 4

_BACKENDS = ("thread", "process")


@dataclass(frozen=True)
class ParallelConfig:
    """Configuration of the parallel query engine.

    ``workers == 0`` disables the engine entirely: every pipeline takes
    the exact serial code path of the pre-parallel system (the comparison
    baseline the benchmarks measure against).  ``workers >= 1`` enables
    the streaming protocol, the worker pool and the answer memo; with one
    worker the pipeline machinery runs but degenerates to serial order,
    which is the cheap way to test the machinery itself.
    """

    workers: int = 0
    backend: str = "thread"
    #: fragments per streamed response chunk (server→client)
    chunk_fragments: int = 8
    #: smallest candidate list worth sharding across workers
    min_shard: int = 64

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.backend not in _BACKENDS:
            raise ValueError(
                f"unknown pool backend {self.backend!r}; "
                f"expected one of {_BACKENDS}"
            )
        if self.chunk_fragments < 1:
            raise ValueError("chunk_fragments must be >= 1")
        if self.min_shard < 1:
            raise ValueError("min_shard must be >= 1")

    @property
    def enabled(self) -> bool:
        return self.workers >= 1

    @classmethod
    def from_env(cls) -> "ParallelConfig":
        """Read ``REPRO_WORKERS`` (unset / 0 → disabled)."""
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return cls(workers=0)
        try:
            workers = int(raw)
        except ValueError as exc:
            raise ValueError(
                f"{WORKERS_ENV} must be an integer, got {raw!r}"
            ) from exc
        return cls(workers=max(0, workers))

    @classmethod
    def coerce(cls, parallel: Any) -> "ParallelConfig":
        """Normalize the ``parallel=`` argument accepted by the system.

        ``None`` defers to the environment, ``False`` forces serial,
        ``True`` asks for :data:`DEFAULT_WORKERS`, an ``int`` names the
        worker count, and a :class:`ParallelConfig` passes through.
        """
        if parallel is None:
            return cls.from_env()
        if isinstance(parallel, ParallelConfig):
            return parallel
        if parallel is False:
            return cls(workers=0)
        if parallel is True:
            return cls(workers=DEFAULT_WORKERS)
        if isinstance(parallel, int):
            return cls(workers=max(0, parallel))
        raise TypeError(
            "parallel must be None, a bool, an int worker count or a "
            f"ParallelConfig, got {type(parallel).__name__}"
        )


class WorkerPool:
    """A lazily started, order-preserving ``concurrent.futures`` pool.

    The executor is created on first use (hosting a system must not cost
    threads the caller never exercises) and shut down by :meth:`close`.
    ``map_ordered`` is the workhorse: it fans ``fn`` over ``items`` and
    returns results *in input order*, which is what makes every parallel
    pipeline byte-identical to its serial twin — parallelism changes the
    schedule, never the sequence of results.

    The thread backend shares memory with the caller (caches stay warm
    across workers; CPython's GIL serializes pure-Python sections but
    overlaps are real wherever one stage waits on another).  The process
    backend requires picklable work units and pays per-task transport, so
    it suits coarse jobs like bulk block decryption.
    """

    def __init__(self, config: ParallelConfig) -> None:
        self.config = config
        self._executor: Executor | None = None
        #: Observability context set by the owning system.  Thread-backend
        #: tasks are wrapped at submit time so their spans attach under
        #: whatever span the *submitting* thread had open; the process
        #: backend instead ships per-task counter deltas back (see
        #: :meth:`map_ordered` and ``repro/perf/counters.py``).
        self.obs: "Observability | None" = None

    @property
    def backend(self) -> str:
        return self.config.backend

    @property
    def workers(self) -> int:
        return self.config.workers

    def _ensure(self) -> Executor:
        if self._executor is None:
            if self.config.backend == "process":
                self._executor = ProcessPoolExecutor(
                    max_workers=self.config.workers
                )
            else:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.config.workers,
                    thread_name_prefix="repro-worker",
                )
        return self._executor

    def _propagate(self, fn: Callable[..., R]) -> Callable[..., R]:
        """Carry the submitting thread's span context onto the worker."""
        if self.obs is None or self.config.backend != "thread":
            return fn
        return self.obs.tracer.wrap(fn)

    def submit(self, fn: Callable[..., R], /, *args: Any, **kwargs: Any):
        """Schedule one task; returns its ``Future``."""
        return self._ensure().submit(self._propagate(fn), *args, **kwargs)

    def map_ordered(
        self, fn: Callable[[T], R], items: Sequence[T]
    ) -> list[R]:
        """Apply ``fn`` across ``items``, results in input order.

        Short inputs (fewer than two items, or a one-worker pool where
        fan-out buys nothing but scheduling overhead for *independent*
        tasks) run inline on the calling thread.

        Process-backend tasks run against the *child's* counter registry,
        whose increments would die with the worker; each task therefore
        returns its per-task counter delta alongside the result, and they
        are folded into the parent registry here at join — thread and
        process backends report equal work counts on the same workload.
        """
        if len(items) < 2 or self.config.workers < 2:
            return [fn(item) for item in items]
        executor = self._ensure()
        if self.config.backend == "process":
            from repro.perf import counters

            results: list[R] = []
            for result, delta in executor.map(
                _call_with_counter_delta, [(fn, item) for item in items]
            ):
                counters.merge(delta)
                results.append(result)
            return results
        return list(executor.map(self._propagate(fn), items))

    def close(self) -> None:
        """Shut the executor down (idempotent; pool restarts on next use)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()


def _call_with_counter_delta(
    task: "tuple[Callable[[Any], Any], Any]",
) -> "tuple[Any, dict[str, int]]":
    """Run one task in a worker process, returning (result, counter delta).

    Module-level so it pickles.  Process-pool workers execute tasks
    serially, so the snapshot pair brackets exactly this task's
    increments; only nonzero entries travel back over the pipe.
    """
    from repro.perf import counters

    fn, item = task
    before = counters.snapshot()
    result = fn(item)
    delta = {
        name: value
        for name, value in counters.delta_since(before).items()
        if value
    }
    return result, delta


def filter_shards(
    pool: "WorkerPool | None",
    items: Sequence[T],
    predicate: Callable[[T], bool],
    min_shard: int,
    shard_count: int | None = None,
) -> list[T]:
    """Order-preserving (possibly parallel) filter over sharded input.

    The DSI candidate lists arrive sorted by interval low bound, so
    contiguous shards are *interval groups* — each worker evaluates one
    group of the index independently and the concatenation restores the
    exact serial order.  Lists below ``min_shard`` (or with no usable
    pool) filter inline; the cut-off keeps tiny queries from paying
    scheduling overhead.
    """
    if (
        pool is None
        or pool.workers < 2
        or pool.backend != "thread"  # closures don't pickle
        or len(items) < max(min_shard, 2)
    ):
        return [item for item in items if predicate(item)]
    from repro.perf import counters

    counters.add("sharded_filter_runs")
    shards = shard_spans(len(items), shard_count or pool.workers)

    def run_shard(span: tuple[int, int]) -> list[T]:
        start, stop = span
        return [item for item in items[start:stop] if predicate(item)]

    kept: list[T] = []
    for shard in pool.map_ordered(run_shard, shards):
        kept.extend(shard)
    return kept


def shard_spans(length: int, shard_count: int) -> list[tuple[int, int]]:
    """Split ``range(length)`` into ≤ ``shard_count`` contiguous spans.

    Spans differ in size by at most one element and cover the range
    exactly, in order — the partition underlying every sharded filter.
    """
    shard_count = max(1, min(shard_count, length))
    base, extra = divmod(length, shard_count)
    spans: list[tuple[int, int]] = []
    start = 0
    for index in range(shard_count):
        stop = start + base + (1 if index < extra else 0)
        spans.append((start, stop))
        start = stop
    return spans


def iter_chunks(items: Sequence[T], size: int) -> Iterable[Sequence[T]]:
    """Yield ``items`` in contiguous runs of at most ``size``."""
    if size < 1:
        raise ValueError("chunk size must be >= 1")
    for start in range(0, len(items), size):
        yield items[start : start + size]
