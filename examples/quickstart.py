#!/usr/bin/env python3
"""Quickstart: host the paper's Figure 2 database and run its example query.

This walks the full Figure 1 pipeline on the running example of the paper:

1. build the healthcare database and the Example 3.1 security constraints;
2. host it — the optimal secure encryption scheme is computed, sensitive
   subtrees are encrypted with decoys, and the DSI + OPESS metadata is
   built for the server;
3. run the Figure 7(b) query through translation → server evaluation →
   decryption → post-processing;
4. verify the answer equals evaluating the query on the plaintext.

Run:  python examples/quickstart.py
"""

from repro import SecureXMLSystem
from repro.core.client import canonical_node
from repro.workloads.healthcare import (
    EXAMPLE_QUERY,
    build_healthcare_database,
    healthcare_constraints,
)
from repro.xmldb.serializer import serialize
from repro.xpath.evaluator import evaluate


def main() -> None:
    document = build_healthcare_database()
    constraints = healthcare_constraints()

    print("=== Security constraints (Example 3.1) ===")
    for constraint in constraints:
        print(f"  {constraint}")

    system = SecureXMLSystem.host(document, constraints, scheme="opt")
    trace = system.hosting_trace
    print("\n=== Hosted database ===")
    print(f"  scheme: {trace.scheme_kind}")
    print(f"  covered fields: {sorted(system.scheme.covered_fields)}")
    print(f"  encryption blocks: {trace.block_count}")
    print(f"  decoys injected: {trace.decoy_count}")
    print(f"  plaintext size: {trace.plaintext_bytes} B")
    print(f"  hosted size: {trace.hosted_bytes} B")
    print(f"  DSI index entries: {trace.index_entries}")
    print(f"  value-index entries: {trace.value_index_entries}")

    print("\n=== Hosted tree (what the server sees, truncated) ===")
    print(serialize(system.hosted.hosted_root, indent=True)[:800])

    print(f"\n=== Query ===\n  Q  = {EXAMPLE_QUERY}")
    translated = system.client.translate(EXAMPLE_QUERY)
    print(f"  Qs root keys = {translated.root.keys}")

    answer = system.query(EXAMPLE_QUERY)
    print(f"\n=== Answer ===\n  SSNs: {sorted(answer.values())}")

    query_trace = system.last_trace
    print("\n=== Per-stage trace ===")
    for key, value in query_trace.as_row().items():
        print(f"  {key}: {value}")

    expected = sorted(
        canonical_node(node) for node in evaluate(document, EXAMPLE_QUERY)
    )
    assert answer.canonical() == expected
    print("\nOK: pipeline answer equals the plaintext answer, Q(D) == Q(δ(Qs(η(D)))).")


if __name__ == "__main__":
    main()
