"""Cross-workload integration tests: the full pipeline on generated data.

Each test hosts a generated database under every scheme and checks the
paper's exactness equation on a whole query workload — this is the
reproduction's strongest single guarantee.
"""

import pytest

from repro.core.client import canonical_node
from repro.core.system import SecureXMLSystem
from repro.workloads.queries import QueryWorkload
from repro.xpath.evaluator import evaluate


def truth(document, query):
    return sorted(canonical_node(n) for n in evaluate(document, query))


@pytest.mark.parametrize("kind", ["opt", "app", "sub", "top"])
class TestXMarkPipeline:
    @pytest.fixture(scope="class")
    def queries(self, xmark_doc):
        workload = QueryWorkload(xmark_doc, seed=21, per_class=4)
        return [q for qs in workload.by_class().values() for q in qs]

    def test_workload_exactness(self, kind, xmark_doc, xmark_scs, queries):
        system = SecureXMLSystem.host(xmark_doc, xmark_scs, scheme=kind)
        for query in queries:
            assert system.query(query).canonical() == truth(
                xmark_doc, query
            ), (kind, query)

    def test_association_queries_exact(self, kind, xmark_doc, xmark_scs):
        system = SecureXMLSystem.host(xmark_doc, xmark_scs, scheme=kind)
        # Query along the protected association: name + income.
        person = evaluate(xmark_doc, "//person")[0]
        name = evaluate(xmark_doc, "//person/name")[0].text_value()
        query = f"//person[name='{name}']//income"
        assert system.query(query).canonical() == truth(xmark_doc, query)


@pytest.mark.parametrize("kind", ["opt", "app", "sub", "top"])
class TestNasaPipeline:
    @pytest.fixture(scope="class")
    def queries(self, nasa_doc):
        workload = QueryWorkload(nasa_doc, seed=22, per_class=4)
        return [q for qs in workload.by_class().values() for q in qs]

    def test_workload_exactness(self, kind, nasa_doc, nasa_scs, queries):
        system = SecureXMLSystem.host(nasa_doc, nasa_scs, scheme=kind)
        for query in queries:
            assert system.query(query).canonical() == truth(
                nasa_doc, query
            ), (kind, query)

    def test_deep_predicate_query(self, kind, nasa_doc, nasa_scs):
        system = SecureXMLSystem.host(nasa_doc, nasa_scs, scheme=kind)
        last = evaluate(nasa_doc, "//author/last")[0].text_value()
        query = f"//dataset[.//last='{last}']/title"
        assert system.query(query).canonical() == truth(nasa_doc, query)

    def test_range_predicate_query(self, kind, nasa_doc, nasa_scs):
        system = SecureXMLSystem.host(nasa_doc, nasa_scs, scheme=kind)
        query = "//author[age>50]/last"
        assert system.query(query).canonical() == truth(nasa_doc, query)


class TestSecurityConstraintEnforcement:
    """Hosted databases never expose SC-protected information in the clear."""

    @pytest.mark.parametrize("kind", ["opt", "app", "sub", "top"])
    def test_covered_fields_absent_from_hosted_xml(
        self, kind, xmark_doc, xmark_scs
    ):
        from repro.xmldb.serializer import serialize

        system = SecureXMLSystem.host(xmark_doc, xmark_scs, scheme=kind)
        hosted_xml = serialize(system.hosted.hosted_root)
        for field in system.scheme.covered_fields:
            plan = system.hosted.field_plans.get(field)
            if plan is None:
                continue
            for value in plan.ordered_values:
                # Match the serialized leaf form; bare substrings can
                # collide with hex ciphertext by chance.
                assert f">{value}<" not in hosted_xml, (kind, field, value)

    def test_node_constraint_subtrees_fully_hidden(
        self, nasa_doc
    ):
        from repro.core.constraints import SecurityConstraint
        from repro.xmldb.serializer import serialize

        constraints = [SecurityConstraint.parse("//reference")]
        system = SecureXMLSystem.host(nasa_doc, constraints, scheme="opt")
        hosted_xml = serialize(system.hosted.hosted_root)
        assert "<author>" not in hosted_xml
        assert "<journal>" not in hosted_xml
