"""Regression tests for bugs found during development.

Each test documents a concrete failure mode that once existed, so the
exact scenario stays covered forever.
"""

from repro.core.client import canonical_node
from repro.core.constraints import parse_constraints
from repro.core.system import SecureXMLSystem
from repro.xmldb.builder import TreeBuilder
from repro.xpath.evaluator import evaluate


class TestUnknownLiteralRangeRegression:
    """Range predicates with literals *between* domain values.

    Bug: the original Figure 7(a) translation anchored range bounds on the
    literal's own (interpolated) position.  OPESS displacements reach
    almost a full value-gap δ, so a chunk of a *matching* value could be
    displaced past the literal's position and fall outside the translated
    range — the server then dropped its block entirely and the final
    answer silently lost rows.  Found by
    ``test_property_opess.TestPredicateOracle`` with histogram
    {'0': 2, '10': 5} and the predicate ``< 11``.  Fixed by anchoring
    unknown-literal bounds on the neighbouring domain values.
    """

    def _build(self):
        builder = TreeBuilder("people")
        ages = ["0", "0", "10", "10", "10", "10", "10"]
        for index, age in enumerate(ages):
            with builder.element("person"):
                builder.leaf("name", f"p{index}")
                builder.leaf("age", age)
        document = builder.document()
        constraints = parse_constraints(["//person:(/name, /age)"])
        return document, constraints

    def test_less_than_between_values(self):
        document, constraints = self._build()
        system = SecureXMLSystem.host(document, constraints, scheme="opt")
        # '11' is not a domain value; every person matches age < 11.
        query = "//person[age<11]/name"
        expected = sorted(
            canonical_node(n) for n in evaluate(document, query)
        )
        assert len(expected) == 7
        assert system.query(query).canonical() == expected

    def test_all_operators_between_values(self):
        document, constraints = self._build()
        system = SecureXMLSystem.host(document, constraints, scheme="opt")
        for literal in ("-1", "5", "11"):
            for op in ("<", "<=", ">", ">=", "=", "!="):
                query = f"//person[age{op}{literal}]/name"
                expected = sorted(
                    canonical_node(n) for n in evaluate(document, query)
                )
                assert system.query(query).canonical() == expected, query


class TestCountInternalNodesRegression:
    """COUNT must count nodes, not leaf values.

    Bug: ``aggregate(query, "count")`` folded over ``answer.values()``,
    which skips internal elements (they have no text value), so counting
    ``//author`` returned 0.  Fixed to count answer nodes.
    """

    def test_count_internal_elements(self, healthcare_doc, healthcare_scs):
        system = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, scheme="opt"
        )
        assert system.aggregate("//treat", "count") == 3
        assert system.aggregate("//patient", "count") == 2


class TestTableOrderRegression:
    """DSI table lists must be sorted by interval for the stack joins.

    Bug: index construction walked the tree with an explicit stack, so
    per-tag entry lists came out in a traversal order that is not
    document order; ``stack_tree_desc`` silently missed pairs.  Fixed by
    sorting each table list at build time.
    """

    def test_lookup_lists_sorted(self, nasa_doc, nasa_scs):
        system = SecureXMLSystem.host(nasa_doc, nasa_scs, scheme="opt")
        for entries in system.hosted.structural_index.table.values():
            lows = [entry.interval.low for entry in entries]
            assert lows == sorted(lows)
