"""Substrate micro-benchmarks: the primitives the system is built on.

Not paper figures — these track the per-operation costs that determine the
experiment run times (and guard against performance regressions in the
from-scratch primitives).  Each uses proper multi-round pytest-benchmark
measurement since the operations are cheap.
"""

from repro.btree import BTree
from repro.crypto.aes import AES128
from repro.crypto.hmac import hmac_sha256
from repro.crypto.ope import OrderPreservingEncryption
from repro.crypto.sha256 import sha256
from repro.crypto.siphash import siphash24
from repro.workloads.healthcare import build_healthcare_database
from repro.xmldb.parser import parse_document
from repro.xmldb.serializer import serialize
from repro.xpath.evaluator import evaluate

_KEY16 = bytes(range(16))
_BLOCK = bytes(range(16))


def test_micro_sha256(benchmark):
    result = benchmark(sha256, b"x" * 64)
    assert len(result) == 32


def test_micro_hmac(benchmark):
    result = benchmark(hmac_sha256, b"key", b"message" * 8)
    assert len(result) == 32


def test_micro_siphash(benchmark):
    result = benchmark(siphash24, _KEY16, b"m" * 32)
    assert 0 <= result < (1 << 64)


def test_micro_aes_block(benchmark):
    cipher = AES128(_KEY16)
    result = benchmark(cipher.encrypt_block, _BLOCK)
    assert len(result) == 16


def test_micro_ope_encrypt(benchmark):
    ope = OrderPreservingEncryption(b"k" * 16)
    counter = iter(range(10**9))

    def encrypt_fresh():
        return ope.encrypt_float(float(next(counter)))

    benchmark(encrypt_fresh)


def test_micro_btree_insert(benchmark):
    tree = BTree(min_degree=16)
    counter = iter(range(10**9))

    def insert():
        key = next(counter)
        tree.insert(key, key)

    benchmark(insert)
    tree.check_invariants()


def test_micro_btree_range_scan(benchmark):
    tree = BTree(min_degree=16)
    for key in range(5000):
        tree.insert(key, key)

    def scan():
        return sum(1 for _ in tree.range_scan(1000, 2000))

    assert benchmark(scan) == 1001


def test_micro_xml_parse(benchmark):
    xml = serialize(build_healthcare_database())

    def parse():
        return parse_document(xml)

    document = benchmark(parse)
    assert document.root.tag == "hospital"


def test_micro_xpath_evaluate(benchmark):
    document = build_healthcare_database()
    query = "//patient[.//insurance//@coverage>=10000]//SSN"

    def run():
        return evaluate(document, query)

    assert len(benchmark(run)) == 2
