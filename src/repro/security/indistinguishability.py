"""Database indistinguishability (Definition 3.1) and candidate generation.

Two plaintext databases D, D′ are indistinguishable (D ∼ D′) to the §3.3
attacker when (1) their encryptions have equal size and (2) for each field
the multiset of ciphertext occurrence frequencies is equal.  This module
checks the definition on concrete documents and *constructs* candidate
databases — value-permuted variants of a hosted database that are
indistinguishable from it yet break the protected associations, which is
exactly the candidate family used in the proofs of Theorems 4.1 and 5.2.
"""

from __future__ import annotations

from repro.core.constraints import SecurityConstraint
from repro.crypto.prf import DeterministicRandom
from repro.xmldb.node import Attribute, Document, Element, Text
from repro.xmldb.serializer import serialized_size
from repro.xmldb.stats import leaf_field_name, same_distribution, value_frequencies


def indistinguishable(left: Document, right: Document) -> bool:
    """Definition 3.1 on plaintext documents.

    Condition (1) — equal encrypted size — is checked on the serialized
    plaintext size, which determines ciphertext size under our (and the
    paper's) length-preserving-modulo-padding block encryption when the
    value multisets match.  Condition (2) — equal per-field frequency
    multisets over the same domain — is checked per field.
    """
    if serialized_size(left) != serialized_size(right):
        return False
    left_fields = value_frequencies(left)
    right_fields = value_frequencies(right)
    if set(left_fields) != set(right_fields):
        return False
    for field_name, left_histogram in left_fields.items():
        right_histogram = right_fields[field_name]
        if set(left_histogram) != set(right_histogram):
            return False  # different domains
        if not same_distribution(left_histogram, right_histogram):
            return False
    return True


def permute_field_values(
    document: Document, field_name: str, seed: int = 0
) -> Document:
    """A candidate database: the field's values permuted across positions.

    Produces a D′ with identical structure and identical per-field
    histograms in which the value *associations* differ — the standard
    candidate construction in the Theorem 4.1 / 5.2 proofs.  Values are
    permuted only between leaves whose values have equal string length, so
    |E(D′)| = |E(D)| and the size-based attack cannot separate them.
    """
    candidate = document.clone()
    leaves = [
        leaf
        for leaf in candidate.leaves()
        if leaf_field_name(leaf) == field_name and leaf.text_value() is not None
    ]
    by_length: dict[int, list] = {}
    for leaf in leaves:
        value = leaf.text_value()
        assert value is not None
        by_length.setdefault(len(value), []).append(leaf)

    rng = DeterministicRandom(
        seed.to_bytes(8, "big").rjust(16, b"\x00"), f"permute:{field_name}"
    )
    for group in by_length.values():
        values = [leaf.text_value() for leaf in group]
        rng.shuffle(values)
        for leaf, value in zip(group, values):
            _set_leaf_value(leaf, value)
    candidate.renumber()
    return candidate


def breaks_association(
    original: Document,
    candidate: Document,
    constraint: SecurityConstraint,
) -> bool:
    """True if some association protected in D does not hold in D′."""
    original_pairs = set(constraint.association_pairs(original))
    candidate_pairs = set(constraint.association_pairs(candidate))
    return bool(original_pairs - candidate_pairs)


def _set_leaf_value(leaf, value: str) -> None:
    if isinstance(leaf, Attribute):
        leaf.value = value
        return
    assert isinstance(leaf, Element)
    child = leaf.children[0]
    assert isinstance(child, Text)
    child.value = value
