"""Tests for the constraint graph and the vertex-cover solvers (§4.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.constraint_graph import ConstraintGraph, build_constraint_graph
from repro.core.constraints import SecurityConstraint
from repro.core.optimal import (
    clarkson_greedy_cover,
    cover_weight,
    exact_min_cover,
    pricing_cover,
)


class TestConstraintGraph:
    def test_healthcare_graph_shape(self, healthcare_doc, healthcare_scs):
        graph = build_constraint_graph(healthcare_doc, healthcare_scs)
        assert set(graph.weights) == {"pname", "SSN", "disease", "doctor"}
        assert frozenset({"pname", "SSN"}) in graph.edges
        assert frozenset({"pname", "disease"}) in graph.edges
        assert frozenset({"disease", "doctor"}) in graph.edges
        assert len(graph.edges) == 3

    def test_node_type_constraints_excluded(self, healthcare_doc, healthcare_scs):
        graph = build_constraint_graph(healthcare_doc, healthcare_scs)
        assert "insurance" not in graph.weights

    def test_weights_reflect_binding_counts(self, healthcare_doc, healthcare_scs):
        graph = build_constraint_graph(healthcare_doc, healthcare_scs)
        # 2 pname leaves, each subtree size 2 (+1 decoy) = 3 -> weight 6.
        assert graph.weights["pname"] == 6
        # 3 disease leaves -> weight 9.
        assert graph.weights["disease"] == 9

    def test_degree_and_neighbors(self, healthcare_doc, healthcare_scs):
        graph = build_constraint_graph(healthcare_doc, healthcare_scs)
        assert graph.degree("pname") == 2
        assert graph.neighbors("disease") == {"pname", "doctor"}

    def test_is_vertex_cover(self, healthcare_doc, healthcare_scs):
        graph = build_constraint_graph(healthcare_doc, healthcare_scs)
        assert graph.is_vertex_cover({"pname", "disease"})
        assert graph.is_vertex_cover({"SSN", "disease"})
        assert not graph.is_vertex_cover({"pname"})

    def test_shared_endpoint_widens_bindings_once(self, healthcare_doc):
        constraints = [
            SecurityConstraint.parse("//patient:(/pname, /SSN)"),
            SecurityConstraint.parse("//patient:(/pname, /age)"),
        ]
        graph = build_constraint_graph(healthcare_doc, constraints)
        assert len(graph.bindings["pname"]) == 2  # not double counted


def _graph(weights: dict[str, int], edges: list[tuple[str, str]]) -> ConstraintGraph:
    graph = ConstraintGraph()
    graph.weights = dict(weights)
    graph.edges = {frozenset(edge) for edge in edges}
    return graph


class TestExactCover:
    def test_single_edge_picks_lighter(self):
        graph = _graph({"a": 5, "b": 2}, [("a", "b")])
        assert exact_min_cover(graph) == {"b"}

    def test_star_picks_center(self):
        graph = _graph(
            {"hub": 3, "x": 2, "y": 2, "z": 2},
            [("hub", "x"), ("hub", "y"), ("hub", "z")],
        )
        assert exact_min_cover(graph) == {"hub"}

    def test_triangle_needs_two(self):
        graph = _graph(
            {"a": 1, "b": 1, "c": 1}, [("a", "b"), ("b", "c"), ("a", "c")]
        )
        cover = exact_min_cover(graph)
        assert len(cover) == 2

    def test_weighted_tradeoff(self):
        # Covering via two cheap leaves beats one expensive hub.
        graph = _graph(
            {"hub": 100, "x": 1, "y": 1},
            [("hub", "x"), ("hub", "y")],
        )
        assert exact_min_cover(graph) == {"x", "y"}

    def test_self_loop_forced(self):
        graph = _graph({"a": 10, "b": 1}, [("a", "b")])
        graph.edges.add(frozenset({"a"}))
        cover = exact_min_cover(graph)
        assert "a" in cover

    def test_empty_graph(self):
        assert exact_min_cover(_graph({}, [])) == set()

    def test_size_limit_enforced(self):
        weights = {f"v{i}": 1 for i in range(30)}
        edges = [(f"v{i}", f"v{i+1}") for i in range(29)]
        with pytest.raises(ValueError):
            exact_min_cover(_graph(weights, edges), limit=24)


class TestApproximations:
    @pytest.mark.parametrize("algorithm", [clarkson_greedy_cover, pricing_cover])
    def test_produces_valid_cover(self, algorithm):
        graph = _graph(
            {"a": 3, "b": 1, "c": 2, "d": 5},
            [("a", "b"), ("b", "c"), ("c", "d"), ("a", "d")],
        )
        cover = algorithm(graph)
        assert graph.is_vertex_cover(cover)

    @pytest.mark.parametrize("algorithm", [clarkson_greedy_cover, pricing_cover])
    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_within_factor_two_of_optimal(self, algorithm, data):
        """The §4.2 approximation guarantee, on random graphs."""
        vertex_count = data.draw(st.integers(min_value=2, max_value=9))
        vertices = [f"v{i}" for i in range(vertex_count)]
        weights = {
            v: data.draw(st.integers(min_value=1, max_value=20)) for v in vertices
        }
        possible_edges = [
            (a, b)
            for i, a in enumerate(vertices)
            for b in vertices[i + 1 :]
        ]
        edges = data.draw(
            st.lists(st.sampled_from(possible_edges), min_size=1, max_size=12)
        )
        graph = _graph(weights, edges)
        optimal = cover_weight(graph, exact_min_cover(graph))
        approximate = cover_weight(graph, algorithm(graph))
        assert approximate <= 2 * optimal

    def test_clarkson_charging_prefers_cheap_dense(self):
        graph = _graph(
            {"cheap": 1, "far": 10, "near": 10},
            [("cheap", "far"), ("cheap", "near")],
        )
        assert clarkson_greedy_cover(graph) == {"cheap"}
