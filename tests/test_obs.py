"""The observability layer: spans, metrics, slow log, and reconciliation.

The load-bearing contract is at the end: the span tree is a *view* of the
same measurements :class:`~repro.core.system.QueryTrace` reports, so the
per-stage span totals must reconcile with the trace fields — exactly for
modelled stages (transfer, backoff), and well within the issue's ±1ms
acceptance window for measured ones.
"""

import json
import threading

import pytest

from repro.core.parallel import ParallelConfig
from repro.core.system import SecureXMLSystem
from repro.netsim.channel import Channel
from repro.netsim.faults import FaultPolicy, FaultyChannel
from repro.obs import (
    Histogram,
    MetricsRegistry,
    Observability,
    SlowQueryLog,
    Span,
    Tracer,
    lint_prometheus,
    parse_prometheus,
)

#: (span name, trace attribute) — the compatibility-view mapping.
STAGES = (
    ("translate", "translate_client_s"),
    ("server", "server_s"),
    ("transfer", "transfer_s"),
    ("decrypt", "decrypt_client_s"),
    ("postprocess", "postprocess_client_s"),
    ("backoff", "backoff_s"),
)

TOLERANCE_S = 0.001  # the issue's ±1ms acceptance window


def assert_reconciles(trace) -> None:
    root = trace.span
    assert root is not None
    assert root.duration_s is not None, "root span left open"
    for span_name, attr in STAGES:
        assert root.total(span_name) == pytest.approx(
            getattr(trace, attr), abs=TOLERANCE_S
        ), span_name


class TestSpan:
    def test_nesting_and_finish(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent is outer
        assert outer.children == [inner]
        assert outer.duration_s >= inner.duration_s >= 0.0

    def test_finish_is_idempotent(self):
        span = Span("x")
        first = span.finish()
        assert span.finish() == first

    def test_set_duration_marks_modelled(self):
        span = Span("transfer")
        span.set_duration(0.25)
        assert span.duration_s == 0.25
        assert span.annotations["modelled"] is True

    def test_total_sums_across_subtree(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            for _ in range(3):
                child = tracer.begin("server")
                child.set_duration(0.5)
        assert root.total("server") == pytest.approx(1.5)
        assert root.total("nosuch") == 0.0

    def test_find_and_iter_depth_first(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("a"):
                tracer.begin("leaf").finish()
            with tracer.span("b"):
                pass
        names = [span.name for span in root.iter()]
        assert names == ["root", "a", "leaf", "b"]
        assert root.find("leaf").name == "leaf"
        assert root.find("nosuch") is None

    def test_add_event_accumulates(self):
        span = Span("attempt")
        span.add_event("faults", "drop")
        span.add_event("faults", "corrupt")
        assert span.annotations["faults"] == ["drop", "corrupt"]

    def test_as_dict_round_trips_through_json(self):
        tracer = Tracer()
        with tracer.span("root", query="//a") as root:
            with tracer.span("child"):
                pass
        data = json.loads(json.dumps(root.as_dict()))
        assert data["name"] == "root"
        assert data["annotations"] == {"query": "//a"}
        assert data["children"][0]["name"] == "child"

    def test_render_groups_repeated_leaves(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            for _ in range(4):
                tracer.begin("transfer").set_duration(0.001)
        rendered = root.render()
        assert "transfer ×4" in rendered


class TestTracer:
    def test_disabled_spans_still_time(self):
        tracer = Tracer(enabled=False)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        # Timed, but never linked or made ambient.
        assert inner.duration_s is not None
        assert inner.parent is None
        assert outer.children == []
        assert tracer.current() is None

    def test_begin_does_not_become_ambient(self):
        tracer = Tracer()
        root = tracer.begin("query")
        assert tracer.current() is None
        with tracer.activate(root):
            assert tracer.current() is root
        assert tracer.current() is None

    def test_wrap_propagates_context_across_threads(self):
        tracer = Tracer()
        seen: dict[str, object] = {}

        def task() -> None:
            seen["current"] = tracer.current()
            seen["worker"] = tracer.in_worker()
            tracer.begin("work").finish()

        with tracer.span("root") as root:
            wrapped = tracer.wrap(task)
        worker = threading.Thread(target=wrapped)
        worker.start()
        worker.join()
        assert seen["current"] is root
        assert seen["worker"] is True
        assert root.find("work") is not None

    def test_wrap_without_context_is_identity(self):
        tracer = Tracer()

        def task() -> None:
            pass

        assert tracer.wrap(task) is task
        assert Tracer(enabled=False).wrap(task) is task

    def test_activate_none_is_a_noop(self):
        tracer = Tracer()
        with tracer.activate(None):
            assert tracer.current() is None


class TestHistogram:
    def test_buckets_are_cumulative(self):
        histogram = Histogram(buckets=(0.001, 0.01, 0.1))
        for value in (0.0005, 0.005, 0.05, 5.0):
            histogram.observe(value)
        assert histogram.bucket_counts == [1, 2, 3]
        assert histogram.count == 4
        assert histogram.min == 0.0005
        assert histogram.max == 5.0
        assert histogram.sum == pytest.approx(5.0555)

    def test_registry_rejects_unknown_histogram(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="unknown histogram"):
            registry.observe("nosuch_seconds", 0.1)


class TestExporters:
    def _registry_with_samples(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.observe("query_seconds", 0.002)
        registry.observe("query_seconds", 0.2)
        registry.observe("transfer_seconds", 0.0003)
        return registry

    def test_json_round_trip(self):
        registry = self._registry_with_samples()
        data = json.loads(registry.to_json())
        assert data["histograms"]["query_seconds"]["count"] == 2
        assert data["histograms"]["query_seconds"]["sum"] == pytest.approx(
            0.202
        )
        assert "counters" in data

    def test_prometheus_output_is_lint_clean(self):
        text = self._registry_with_samples().to_prometheus()
        assert lint_prometheus(text) == []

    def test_columnar_counters_exported(self):
        """The columnar backend's counters ride the standard exposition:
        every ``columnar_*`` registry field surfaces as a ``_total``
        series, and their presence keeps the output lint-clean."""
        registry = self._registry_with_samples()
        text = registry.to_prometheus()
        samples = parse_prometheus(text)
        for name in (
            "columnar_cache_hits",
            "columnar_cache_misses",
            "columnar_plane_builds",
            "columnar_join_sweeps",
        ):
            assert f"repro_{name}_total" in samples, name
        assert lint_prometheus(text) == []
        data = json.loads(registry.to_json())
        assert "columnar_join_sweeps" in data["counters"]

    def test_plane_build_histogram_registered(self):
        registry = MetricsRegistry()
        registry.observe("plane_build_seconds", 0.01)
        samples = parse_prometheus(registry.to_prometheus())
        assert samples["repro_plane_build_seconds_count"] == 1.0

    def test_prometheus_parse_back(self):
        registry = self._registry_with_samples()
        samples = parse_prometheus(registry.to_prometheus())
        assert samples["repro_query_seconds_count"] == 2.0
        assert samples["repro_query_seconds_sum"] == pytest.approx(0.202)
        assert samples['repro_query_seconds_bucket{le="+Inf"}'] == 2.0
        # Cumulative buckets: every bound's count <= the +Inf count.
        buckets = [
            value
            for key, value in samples.items()
            if key.startswith("repro_query_seconds_bucket")
        ]
        assert all(value <= 2.0 for value in buckets)
        # Counters surface with the _total convention.
        assert any(key.endswith("_total") for key in samples)

    def test_lint_catches_malformed_expositions(self):
        assert lint_prometheus("no_newline 1") != []
        assert any(
            "blank" in problem
            for problem in lint_prometheus("a_total 1\n\nb_total 2\n")
        )
        assert any(
            "TYPE" in problem
            for problem in lint_prometheus("orphan_metric 1\n")
        )
        assert any(
            "malformed" in problem
            for problem in lint_prometheus(
                "# HELP x help\n# TYPE x counter\nx one_banana\n"
            )
        )


class TestSlowQueryLog:
    def _trace(self, query: str, seconds: float):
        from repro.core.system import QueryTrace

        trace = QueryTrace(query=query)
        trace.server_s = seconds
        trace.attempts = 1
        return trace

    def test_keeps_slowest_up_to_capacity(self):
        log = SlowQueryLog(capacity=3)
        for index in range(10):
            log.record(self._trace(f"//q{index}", float(index)))
        entries = log.entries()
        assert len(entries) == 3
        assert [entry.query for entry in entries] == ["//q9", "//q8", "//q7"]

    def test_render_and_clear(self):
        log = SlowQueryLog(capacity=2)
        log.record(self._trace("//a", 0.5))
        rendered = log.render()
        assert "//a" in rendered
        log.clear()
        assert len(log) == 0
        assert log.entries() == []

    def test_as_dicts_are_json_able(self):
        log = SlowQueryLog(capacity=2)
        log.record(self._trace("//a", 0.5))
        payload = json.loads(json.dumps(log.as_dicts()))
        assert payload[0]["query"] == "//a"


class TestObservabilityContainer:
    def test_coerce(self):
        enabled = Observability.coerce(None)
        assert enabled.enabled
        assert not Observability.coerce(False).enabled
        assert Observability.coerce(True).enabled
        shared = Observability()
        assert Observability.coerce(shared) is shared
        with pytest.raises(TypeError):
            Observability.coerce("yes")

    def test_disabled_record_is_a_noop(self):
        obs = Observability(enabled=False)
        from repro.core.system import QueryTrace

        trace = QueryTrace(query="//a")
        obs.record_query(trace)
        assert len(obs.slow_log) == 0
        snapshot = obs.metrics.snapshot()
        assert snapshot["histograms"]["query_seconds"]["count"] == 0


class TestEndToEnd:
    """The reconciliation and propagation contract on a real system."""

    def test_serial_spans_reconcile_with_trace(
        self, healthcare_doc, healthcare_scs
    ):
        system = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, parallel=False
        )
        for query in ("//patient/SSN", "/hospital/patient", "//pname"):
            system.query(query)
            assert_reconciles(system.last_trace)

    def test_parallel_spans_reconcile_with_trace(
        self, healthcare_doc, healthcare_scs
    ):
        system = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, parallel=2
        )
        try:
            for query in ("//patient/SSN", "//insurance/@coverage"):
                system.query(query)
                assert_reconciles(system.last_trace)
                # Worker-side fragment decrypts attach under the root.
                assert system.last_trace.span.find("decrypt") is not None
        finally:
            system.close()

    def test_pipelined_batch_spans_reconcile(
        self, healthcare_doc, healthcare_scs
    ):
        system = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, parallel=2
        )
        try:
            queries = ["//patient/SSN", "//pname", "/hospital/patient"]
            system.execute_many(queries)
            for trace in system.last_batch_traces:
                assert_reconciles(trace)
        finally:
            system.close()

    def test_memo_hits_carry_no_span(self, healthcare_doc, healthcare_scs):
        system = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, parallel=2
        )
        try:
            system.execute_many(["//patient/SSN"])
            system.execute_many(["//patient/SSN"])  # memo hit
            hit_trace = system.last_trace
            assert hit_trace.span is None
            assert hit_trace.server_s == 0.0
        finally:
            system.close()

    def test_naive_query_traced(self, healthcare_doc, healthcare_scs):
        system = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, parallel=False
        )
        system.naive_query("//patient/SSN")
        trace = system.last_trace
        assert trace.naive
        root = trace.span
        assert root is not None
        assert root.annotations.get("naive") is True
        assert_reconciles(trace)

    def test_disabled_observability_still_populates_trace(
        self, healthcare_doc, healthcare_scs
    ):
        enabled = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, parallel=False
        )
        disabled = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, parallel=False,
            observability=False,
        )
        answer_on = enabled.query("//patient/SSN")
        answer_off = disabled.query("//patient/SSN")
        assert answer_off.canonical() == answer_on.canonical()
        trace = disabled.last_trace
        assert trace.span is None  # nothing linked…
        assert trace.server_s > 0.0  # …but the timings are all there
        assert trace.decrypt_client_s > 0.0
        obs = disabled.observability()
        assert len(obs.slow_log) == 0
        snapshot = obs.metrics.snapshot()
        assert snapshot["histograms"]["query_seconds"]["count"] == 0

    def test_queries_land_in_histograms_and_slow_log(
        self, healthcare_doc, healthcare_scs
    ):
        system = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, parallel=False
        )
        queries = ("//patient/SSN", "//pname")
        for query in queries:
            system.query(query)
        obs = system.observability()
        snapshot = obs.metrics.snapshot()
        assert snapshot["histograms"]["query_seconds"]["count"] == len(
            queries
        )
        assert snapshot["histograms"]["chunk_decrypt_seconds"]["count"] > 0
        logged = {entry.query for entry in obs.slow_log.entries()}
        assert logged == set(queries)
        assert lint_prometheus(obs.export_prometheus()) == []
        exported = json.loads(obs.export_json())
        assert len(exported["slow_queries"]) == len(queries)

    def test_transfer_spans_carry_modelled_time(
        self, healthcare_doc, healthcare_scs
    ):
        channel = Channel()
        system = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, parallel=False, channel=channel
        )
        system.query("//patient/SSN")
        root = system.last_trace.span
        transfer = root.find("transfer")
        assert transfer is not None
        assert transfer.annotations["modelled"] is True
        assert transfer.annotations["direction"] == "client->server"
        # Exact: modelled seconds are copied, not re-measured.
        assert root.total("transfer") == system.last_trace.transfer_s


class TestFaultAnnotations:
    def test_fault_kinds_annotate_the_open_span(self):
        obs = Observability()
        policy = FaultPolicy.symmetric(seed=0, corrupt=1.0)
        channel = FaultyChannel(policy=policy)
        channel.obs = obs
        with obs.tracer.span("attempt") as span:
            channel.transfer("client->server", "query", b"x" * 64)
        assert span.annotations["faults"] == ["corrupt"]

    def test_retried_query_annotates_faults_and_reconciles(
        self, healthcare_doc, healthcare_scs
    ):
        policy = FaultPolicy.symmetric(seed=3, drop=0.4)
        channel = FaultyChannel(policy=policy)
        system = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, parallel=False, channel=channel
        )
        retried = None
        for query in ("//patient/SSN", "//pname", "/hospital/patient"):
            system.query(query)
            assert_reconciles(system.last_trace)
            if system.last_trace.retries:
                retried = system.last_trace
        assert retried is not None, "fault schedule produced no retry"
        root = retried.span
        faults = [
            fault
            for span in root.iter()
            for fault in span.annotations.get("faults", ())
        ]
        assert "drop" in faults
        failed_attempts = [
            span
            for span in root.iter()
            if span.name == "attempt" and "error" in span.annotations
        ]
        assert len(failed_attempts) == retried.retries
        # Backoff spans are modelled; they reconcile exactly.
        assert root.total("backoff") == retried.backoff_s
        assert retried.backoff_s > 0.0
        entry = next(
            entry
            for entry in system.observability().slow_log.entries()
            if entry.query == retried.query and entry.retries
        )
        assert entry.retries == retried.retries


class TestSharedObservability:
    def test_one_context_across_systems(self, healthcare_doc, healthcare_scs):
        obs = Observability()
        first = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, parallel=False, observability=obs
        )
        second = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, parallel=False, observability=obs
        )
        first.query("//patient/SSN")
        second.query("//pname")
        snapshot = obs.metrics.snapshot()
        assert snapshot["histograms"]["query_seconds"]["count"] == 2
        assert len(obs.slow_log) == 2

    def test_reset_clears_histograms_and_slow_log(
        self, healthcare_doc, healthcare_scs
    ):
        system = SecureXMLSystem.host(
            healthcare_doc, healthcare_scs, parallel=False
        )
        system.query("//patient/SSN")
        obs = system.observability()
        obs.reset()
        assert len(obs.slow_log) == 0
        snapshot = obs.metrics.snapshot()
        assert all(
            data["count"] == 0 for data in snapshot["histograms"].values()
        )


class TestProcessBackendTracing:
    def test_process_backend_reconciles_too(
        self, healthcare_doc, healthcare_scs
    ):
        system = SecureXMLSystem.host(
            healthcare_doc,
            healthcare_scs,
            parallel=ParallelConfig(workers=2, backend="process"),
        )
        try:
            system.query("//patient/SSN")
            assert_reconciles(system.last_trace)
        finally:
            system.close()
