"""A recursive-descent XML parser for the document model.

The parser accepts the XML subset the reproduction needs: prolog, comments,
CDATA sections, elements with attributes, character data with the five
predefined entities and numeric character references.  It intentionally does
not implement DTDs, namespaces-as-scoping or processing-instruction
semantics — none of which appear in the paper's datasets.

Round-tripping of hosted databases is supported: the serializer encodes an
:class:`~repro.xmldb.node.EncryptedBlockNode` as an ``EncryptedData`` element
(mirroring the W3C XML-Encryption wire shape the paper cites in §7.4), and
:func:`parse_document` reconstructs the placeholder when it sees one.
"""

from __future__ import annotations

from repro.xmldb.node import Attribute, Document, Element, EncryptedBlockNode, Node, Text

#: Tag used to serialize encrypted-block placeholders (see serializer.py).
ENCRYPTED_DATA_TAG = "EncryptedData"

_ENTITY_MAP = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}

# '#' is admitted in names because the paper's running example uses tags
# like "policy#" (Figure 2).
_NAME_START_EXTRA = set("_:")
_NAME_EXTRA = set("_:.-#")


class XMLParseError(ValueError):
    """Raised when the input is not well-formed for our XML subset."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


def parse_document(text: str) -> Document:
    """Parse a complete XML document string into a :class:`Document`."""
    return Document(parse_fragment(text))


def parse_fragment(text: str) -> Element:
    """Parse a single-rooted XML fragment into an (unnumbered) element tree."""
    parser = _Parser(text)
    root = parser.parse_root()
    return root


def _is_name_start(char: str) -> bool:
    return char.isalpha() or char in _NAME_START_EXTRA


def _is_name_char(char: str) -> bool:
    return char.isalnum() or char in _NAME_EXTRA


class _Parser:
    """Single-pass cursor over the input string."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.length = len(text)

    # ------------------------------------------------------------------
    # Cursor helpers
    # ------------------------------------------------------------------
    def _error(self, message: str) -> XMLParseError:
        return XMLParseError(message, self.pos)

    def _peek(self) -> str:
        if self.pos >= self.length:
            raise self._error("unexpected end of input")
        return self.text[self.pos]

    def _startswith(self, token: str) -> bool:
        return self.text.startswith(token, self.pos)

    def _expect(self, token: str) -> None:
        if not self._startswith(token):
            raise self._error(f"expected {token!r}")
        self.pos += len(token)

    def _skip_whitespace(self) -> None:
        while self.pos < self.length and self.text[self.pos].isspace():
            self.pos += 1

    def _skip_misc(self) -> None:
        """Skip whitespace, comments, PIs and the XML declaration."""
        while True:
            self._skip_whitespace()
            if self._startswith("<?"):
                end = self.text.find("?>", self.pos)
                if end < 0:
                    raise self._error("unterminated processing instruction")
                self.pos = end + 2
            elif self._startswith("<!--"):
                end = self.text.find("-->", self.pos)
                if end < 0:
                    raise self._error("unterminated comment")
                self.pos = end + 3
            elif self._startswith("<!DOCTYPE"):
                # Skip to the matching '>' (no internal subsets supported).
                end = self.text.find(">", self.pos)
                if end < 0:
                    raise self._error("unterminated DOCTYPE")
                self.pos = end + 1
            else:
                return

    # ------------------------------------------------------------------
    # Grammar productions
    # ------------------------------------------------------------------
    def parse_root(self) -> Element:
        self._skip_misc()
        if self.pos >= self.length or self._peek() != "<":
            raise self._error("expected root element")
        root = self._parse_element()
        self._skip_misc()
        if self.pos != self.length:
            raise self._error("trailing content after root element")
        return _decode_encrypted_blocks(root)

    def _parse_name(self) -> str:
        start = self.pos
        if self.pos >= self.length or not _is_name_start(self._peek()):
            raise self._error("expected a name")
        self.pos += 1
        while self.pos < self.length and _is_name_char(self.text[self.pos]):
            self.pos += 1
        return self.text[start : self.pos]

    def _parse_attribute_value(self) -> str:
        quote = self._peek()
        if quote not in ("'", '"'):
            raise self._error("expected quoted attribute value")
        self.pos += 1
        pieces: list[str] = []
        while True:
            char = self._peek()
            if char == quote:
                self.pos += 1
                return "".join(pieces)
            if char == "<":
                raise self._error("'<' not allowed in attribute value")
            if char == "&":
                pieces.append(self._parse_entity())
            else:
                pieces.append(char)
                self.pos += 1

    def _parse_entity(self) -> str:
        self._expect("&")
        end = self.text.find(";", self.pos)
        if end < 0 or end - self.pos > 10:
            raise self._error("unterminated entity reference")
        body = self.text[self.pos : end]
        self.pos = end + 1
        if body.startswith("#x") or body.startswith("#X"):
            return chr(int(body[2:], 16))
        if body.startswith("#"):
            return chr(int(body[1:]))
        try:
            return _ENTITY_MAP[body]
        except KeyError:
            raise self._error(f"unknown entity &{body};") from None

    def _parse_element(self) -> Element:
        self._expect("<")
        tag = self._parse_name()
        element = Element(tag)

        # Attributes.
        while True:
            self._skip_whitespace()
            char = self._peek()
            if char == ">" or self._startswith("/>"):
                break
            name = self._parse_name()
            self._skip_whitespace()
            self._expect("=")
            self._skip_whitespace()
            value = self._parse_attribute_value()
            if element.attribute(name) is not None:
                raise self._error(f"duplicate attribute {name!r}")
            element.set_attribute(name, value)

        if self._startswith("/>"):
            self.pos += 2
            return element
        self._expect(">")

        # Content.
        text_pieces: list[str] = []

        def flush_text() -> None:
            if text_pieces:
                merged = "".join(text_pieces)
                text_pieces.clear()
                if merged.strip():
                    element.append(Text(merged.strip()))

        while True:
            if self.pos >= self.length:
                raise self._error(f"unterminated element <{tag}>")
            char = self._peek()
            if char == "<":
                if self._startswith("</"):
                    flush_text()
                    self.pos += 2
                    closing = self._parse_name()
                    if closing != tag:
                        raise self._error(
                            f"mismatched closing tag </{closing}> for <{tag}>"
                        )
                    self._skip_whitespace()
                    self._expect(">")
                    return element
                if self._startswith("<!--"):
                    end = self.text.find("-->", self.pos)
                    if end < 0:
                        raise self._error("unterminated comment")
                    self.pos = end + 3
                elif self._startswith("<![CDATA["):
                    end = self.text.find("]]>", self.pos)
                    if end < 0:
                        raise self._error("unterminated CDATA section")
                    text_pieces.append(self.text[self.pos + 9 : end])
                    self.pos = end + 3
                elif self._startswith("<?"):
                    end = self.text.find("?>", self.pos)
                    if end < 0:
                        raise self._error("unterminated processing instruction")
                    self.pos = end + 2
                else:
                    flush_text()
                    element.append(self._parse_element())
            elif char == "&":
                text_pieces.append(self._parse_entity())
            else:
                text_pieces.append(char)
                self.pos += 1


def _decode_encrypted_blocks(root: Element) -> Element:
    """Replace serialized ``EncryptedData`` elements with placeholders."""
    replacements: list[tuple[Element, EncryptedBlockNode]] = []
    for node in root.iter():
        if isinstance(node, Element) and node.tag == ENCRYPTED_DATA_TAG:
            attribute = node.attribute("block-id")
            if attribute is None:
                continue
            payload_text = node.text_value() or ""
            placeholder = EncryptedBlockNode(
                int(attribute.value), bytes.fromhex(payload_text)
            )
            replacements.append((node, placeholder))
    for element, placeholder in replacements:
        if element is root:
            # A fragment that *is* one encrypted block parses as a plain
            # EncryptedData element; the client unwraps it explicitly.
            continue
        element.replace_with(placeholder)
    return root
