"""Length-prefixed wire framing for the serving layer.

The in-process pipeline already has a canonical byte encoding for every
message (:mod:`repro.netsim.message`) and a freshness envelope around it
(:mod:`repro.core.integrity`); what a real socket adds is *delimitation*
and *multiplexing*.  One frame is::

    u32 BE length | u64 BE request id | u8 opcode | payload

where ``length`` covers everything after itself (id + opcode + payload).
The request id is chosen by the client and echoed by the server on every
frame belonging to that request, so many requests can be in flight on
one connection and responses are matched by id, not arrival order.  A
streamed response is a run of ``OP_CHUNK`` frames closed by ``OP_END``,
all carrying the same id.

The framing is deliberately dumb: no compression, no negotiation beyond
the HELLO exchange, and a hard size cap so a garbage length prefix
cannot make the reader allocate unbounded memory.  Everything
security-relevant (MACs, freshness, typed tamper errors) lives in the
*payload* bytes, which are exactly the sealed blobs the in-process path
ships — the frame header is unauthenticated transport metadata, like TCP
headers, and mangling it yields a connection error, never a wrong
answer.
"""

from __future__ import annotations

import asyncio
import struct

#: Frames larger than this are a protocol violation (or garbage reaching
#: the port); a naive full-database ship of the benchmark workloads is a
#: few MB, so 256 MiB leaves orders of magnitude of headroom.
MAX_FRAME_BYTES = 256 * 1024 * 1024

#: u64 request id + u8 opcode (what the length prefix counts besides the
#: payload itself).
_HEAD = struct.Struct("!QB")

# Client -> server opcodes.
OP_HELLO = 1  # JSON {"tenant": ..., "protocol": 1}
OP_QUERY = 2  # sealed translated-query request (answer_wire)
OP_QUERY_STREAM = 3  # u32 chunk_fragments | sealed request (streamed)
OP_NAIVE = 4  # sealed naive request (ship_all_wire)
OP_UPDATE = 5  # freshness-sealed JSON update command (nonce-bound)
OP_FLUSH = 6  # freshness-sealed {"op": "flush"} command (admin/benchmarks)
OP_STATS = 7  # freshness-sealed {"op": "stats"}; sealed JSON response

# Server -> client opcodes.
OP_OK = 16  # complete response payload for the request id
OP_CHUNK = 17  # one sealed chunk of a streamed response
OP_END = 18  # terminates a chunk stream
OP_ERROR = 19  # JSON {"error": <type name>, "message": ...}
OP_HELLO_OK = 20  # JSON session parameters (epoch, root, backend, ...)

#: Opcodes whose payloads are data-plane traffic: exactly the bytes that
#: cross the in-process :class:`~repro.netsim.channel.Channel`, so the
#: fault transport applies the seeded schedules to these and only these.
FAULTED_OPS = frozenset({OP_QUERY, OP_QUERY_STREAM, OP_NAIVE})

PROTOCOL_VERSION = 1


class FrameError(Exception):
    """A frame violated the framing contract (size cap, short header)."""


class ConnectionClosedError(FrameError):
    """The peer closed the connection (possibly mid-frame)."""


def encode_frame(request_id: int, opcode: int, payload: bytes) -> bytes:
    """Serialize one frame; the inverse of :func:`decode_frame`."""
    if not 0 <= request_id < 2**64:
        raise FrameError(f"request id {request_id} out of u64 range")
    if not 0 <= opcode < 256:
        raise FrameError(f"opcode {opcode} out of u8 range")
    length = _HEAD.size + len(payload)
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {length} bytes exceeds cap {MAX_FRAME_BYTES}"
        )
    return (
        length.to_bytes(4, "big")
        + _HEAD.pack(request_id, opcode)
        + payload
    )


def decode_frame(buffer: bytes) -> tuple[tuple[int, int, bytes], bytes]:
    """Split one frame off ``buffer``: ``((id, opcode, payload), rest)``.

    Pure-bytes twin of :func:`read_frame` for tests and sans-IO callers;
    raises :class:`FrameError` when a complete frame is present but
    malformed, and :class:`ConnectionClosedError` when the buffer holds
    only a partial frame (the caller needs more bytes).
    """
    if len(buffer) < 4:
        raise ConnectionClosedError("short buffer: no length prefix")
    length = int.from_bytes(buffer[:4], "big")
    if length < _HEAD.size:
        raise FrameError(f"frame length {length} below header size")
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {length} bytes exceeds cap {MAX_FRAME_BYTES}"
        )
    if len(buffer) < 4 + length:
        raise ConnectionClosedError("short buffer: truncated frame")
    request_id, opcode = _HEAD.unpack_from(buffer, 4)
    payload = bytes(buffer[4 + _HEAD.size : 4 + length])
    return (request_id, opcode, payload), buffer[4 + length :]


async def read_frame(
    reader: asyncio.StreamReader,
) -> tuple[int, int, bytes]:
    """Read exactly one frame: ``(request id, opcode, payload)``.

    Raises :class:`ConnectionClosedError` on EOF (clean between frames
    or dirty inside one) and :class:`FrameError` on a length prefix
    violating the cap — both terminate the connection, which is the only
    safe response to a peer whose framing can no longer be trusted.
    """
    try:
        prefix = await reader.readexactly(4)
    except (asyncio.IncompleteReadError, ConnectionError) as exc:
        raise ConnectionClosedError("connection closed") from exc
    length = int.from_bytes(prefix, "big")
    if length < _HEAD.size or length > MAX_FRAME_BYTES:
        raise FrameError(f"bad frame length {length}")
    try:
        body = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionError) as exc:
        raise ConnectionClosedError(
            "connection closed mid-frame"
        ) from exc
    request_id, opcode = _HEAD.unpack_from(body, 0)
    return request_id, opcode, body[_HEAD.size :]
