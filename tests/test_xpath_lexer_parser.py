"""Unit tests for the XPath lexer and parser."""

import pytest

from repro.xpath import ast
from repro.xpath.lexer import XPathSyntaxError, tokenize
from repro.xpath.parser import parse_xpath


class TestLexer:
    def test_path_tokens(self):
        kinds = [t.kind for t in tokenize("//a/b")]
        assert kinds == ["DSLASH", "NAME", "SLASH", "NAME", "END"]

    def test_operators(self):
        values = [t.value for t in tokenize("a>=1") if t.kind == "OP"]
        assert values == [">="]
        values = [t.value for t in tokenize("a!=b") if t.kind == "OP"]
        assert values == ["!="]

    def test_string_literals(self):
        tokens = tokenize("[x='hi there']")
        strings = [t.value for t in tokens if t.kind == "STRING"]
        assert strings == ["hi there"]

    def test_double_quoted_string(self):
        tokens = tokenize('[x="q"]')
        assert [t.value for t in tokens if t.kind == "STRING"] == ["q"]

    def test_numbers(self):
        tokens = tokenize("[x=12.5]")
        assert [t.value for t in tokens if t.kind == "NUMBER"] == ["12.5"]

    def test_name_with_hash(self):
        tokens = tokenize("//policy#")
        assert tokens[1].value == "policy#"

    def test_axis_separator(self):
        kinds = [t.kind for t in tokenize("following-sibling::b")]
        assert kinds == ["NAME", "AXIS", "NAME", "END"]

    def test_unterminated_string_rejected(self):
        with pytest.raises(XPathSyntaxError):
            tokenize("[x='oops]")

    def test_position_recorded(self):
        tokens = tokenize("//abc")
        assert tokens[1].position == 2


class TestParser:
    def test_absolute_child_chain(self):
        path = parse_xpath("/a/b/c")
        assert path.absolute
        assert [s.test.name for s in path.steps] == ["a", "b", "c"]
        assert all(s.axis == ast.AXIS_CHILD for s in path.steps)

    def test_double_slash_desugars(self):
        path = parse_xpath("//a")
        assert path.absolute
        assert path.steps[0].axis == ast.AXIS_DESCENDANT_OR_SELF
        assert path.steps[0].test.is_wildcard
        assert path.steps[1].test.name == "a"

    def test_inner_double_slash(self):
        path = parse_xpath("/a//b")
        assert [s.axis for s in path.steps] == [
            ast.AXIS_CHILD,
            ast.AXIS_DESCENDANT_OR_SELF,
            ast.AXIS_CHILD,
        ]

    def test_attribute_step(self):
        path = parse_xpath("//a/@x")
        assert path.steps[-1].axis == ast.AXIS_ATTRIBUTE
        assert path.steps[-1].test.name == "x"

    def test_wildcard(self):
        path = parse_xpath("/a/*")
        assert path.steps[1].test.is_wildcard

    def test_dot_and_dotdot(self):
        path = parse_xpath("./a/..")
        assert path.steps[0].axis == ast.AXIS_SELF
        assert path.steps[-1].axis == ast.AXIS_PARENT

    def test_explicit_axis(self):
        path = parse_xpath("a/following-sibling::b")
        assert path.steps[1].axis == ast.AXIS_FOLLOWING_SIBLING

    def test_existence_predicate(self):
        path = parse_xpath("//a[b/c]")
        predicate = path.steps[1].predicates[0]
        assert isinstance(predicate.expr, ast.Exists)

    def test_comparison_predicate_string(self):
        path = parse_xpath("//a[b='v']")
        comparison = path.steps[1].predicates[0].expr
        assert isinstance(comparison, ast.Comparison)
        assert comparison.op == "="
        assert comparison.literal == "v"
        assert comparison.numeric is None

    def test_comparison_predicate_number(self):
        path = parse_xpath("//a[b>=10]")
        comparison = path.steps[1].predicates[0].expr
        assert comparison.numeric == 10.0

    def test_bareword_literal(self):
        # The paper writes //patient[pname=Betty].
        path = parse_xpath("//patient[pname=Betty]")
        comparison = path.steps[1].predicates[0].expr
        assert comparison.literal == "Betty"

    def test_positional_predicate(self):
        path = parse_xpath("/a/b[2]")
        position = path.steps[1].predicates[0].expr
        assert isinstance(position, ast.Position)
        assert position.index == 2

    def test_multiple_predicates(self):
        path = parse_xpath("//p[a=1][b=2]")
        assert len(path.steps[1].predicates) == 2

    def test_self_comparison(self):
        path = parse_xpath("//a[.='x']")
        comparison = path.steps[1].predicates[0].expr
        assert isinstance(comparison, ast.Comparison)

    def test_relative_path(self):
        path = parse_xpath("a/b")
        assert not path.absolute

    @pytest.mark.parametrize(
        "bad",
        ["", "//", "/a[", "/a]", "/a[1.5]", "/a[0]", "/a[b=]", "a b", "/a[=1]"],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(XPathSyntaxError):
            parse_xpath(bad)


class TestRendering:
    @pytest.mark.parametrize(
        "query",
        [
            "/a/b/c",
            "//a",
            "/a//b",
            "//patient[.//insurance//@coverage>=10000]//SSN",
            "//a[b='v']",
            "//a/@x",
            "/a/*",
            "//a[2]",
        ],
    )
    def test_str_roundtrips_through_parser(self, query):
        path = parse_xpath(query)
        assert parse_xpath(str(path)) == path

    def test_canonical_text(self):
        path = parse_xpath("//a")
        assert (
            ast.canonical_text(path)
            == "/descendant-or-self::*/child::a"
        )
