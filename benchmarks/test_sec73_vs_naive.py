"""E3 — §7.3: our approach vs. the naive ship-everything method.

The paper: "the query evaluation time by our technique is only 11% - 28%
of that by the naive method, while top scheme has the same performance as
naive method."  This benchmark measures total query time (server + wire +
client) for both protocols on both datasets under all four schemes and
reports the ratio.
"""

import pytest

from repro.bench.harness import format_table, trimmed_mean

from conftest import SCHEMES, write_result


def _flatten(query_classes):
    return [q for queries in query_classes.values() for q in queries]


def _measure(system, queries, naive):
    totals = []
    for query in queries:
        # cold: the §7.3 ratio compares independent executions of the
        # two protocols; warm caches let the naive path amortize its
        # whole-database decrypt and flatten the paper's 11%–28% gap.
        system.flush_caches()
        if naive:
            system.naive_query(query)
        else:
            system.query(query)
        totals.append(system.last_trace.total_s)
    return trimmed_mean(totals)


def _run(systems, queries):
    rows = []
    ratios = {}
    for kind in SCHEMES:
        system = systems[kind]
        ours = _measure(system, queries, naive=False)
        naive = _measure(system, queries, naive=True)
        ratio = ours / naive if naive else 1.0
        ratios[kind] = ratio
        rows.append([kind, ours, naive, ratio])
    return rows, ratios


@pytest.mark.parametrize("dataset", ["xmark", "nasa"])
def test_vs_naive(benchmark, dataset, xmark_systems, nasa_systems,
                  xmark_queries, nasa_queries):
    systems = xmark_systems if dataset == "xmark" else nasa_systems
    queries = _flatten(xmark_queries if dataset == "xmark" else nasa_queries)
    rows, ratios = benchmark.pedantic(
        _run, args=(systems, queries), rounds=1, iterations=1
    )
    table = format_table(
        ["scheme", "t_ours (s)", "t_naive (s)", "ours/naive"],
        rows,
        f"§7.3 — secure pipeline vs naive method, {dataset} database",
    )
    write_result(f"sec73_vs_naive_{dataset}", table)

    # Shape assertions: selective schemes beat naive decisively; the top
    # scheme cannot beat it (it ships the whole database either way).
    for kind in ("opt", "app"):
        assert ratios[kind] < 0.6, (kind, ratios[kind])
    assert ratios["sub"] < 1.0
    assert ratios["top"] > 0.6
