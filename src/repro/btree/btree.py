"""A from-scratch B-tree with duplicate-tolerant entries and range scans.

The paper's value index is "a B-tree ... each data entry of the form
⟨evalue, Bid⟩" (§5.2).  OPESS's *scaling* step deliberately inserts the same
⟨evalue, Bid⟩ entry multiple times, so this tree maps each key to the *list*
of payloads inserted under it, preserving duplicates — the replicated entry
counts are exactly what the frequency-based attacker observes when profiling
the index.

The implementation is a classic Cormen-style B-tree parameterized by minimum
degree ``t`` (max ``2t − 1`` keys per node), supporting insertion, exact
search, inclusive range scans, in-order iteration and a structural invariant
checker used by the property-based tests.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional


class _BTreeNode:
    """One node: sorted keys, per-key payload lists, child pointers."""

    __slots__ = ("keys", "payloads", "children")

    def __init__(self) -> None:
        self.keys: list[Any] = []
        self.payloads: list[list[Any]] = []
        self.children: list[_BTreeNode] = []

    @property
    def is_leaf(self) -> bool:
        return not self.children


class BTree:
    """B-tree of minimum degree ``t`` (each node holds t−1 .. 2t−1 keys)."""

    def __init__(self, min_degree: int = 16) -> None:
        if min_degree < 2:
            raise ValueError("minimum degree must be at least 2")
        self._t = min_degree
        self._root = _BTreeNode()
        self._distinct_keys = 0
        self._entry_count = 0

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of entries (duplicates counted)."""
        return self._entry_count

    @property
    def distinct_keys(self) -> int:
        return self._distinct_keys

    def height(self) -> int:
        """Number of levels (a lone root is height 1)."""
        height = 1
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
            height += 1
        return height

    def node_count(self) -> int:
        """Total nodes, a proxy for index size (§5.2 size-vs-scaling cost)."""
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children)
        return count

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, key: Any, payload: Any) -> None:
        """Insert one ⟨key, payload⟩ entry; duplicate keys accumulate."""
        root = self._root
        if len(root.keys) == 2 * self._t - 1:
            new_root = _BTreeNode()
            new_root.children.append(root)
            self._split_child(new_root, 0)
            self._root = new_root
            root = new_root
        self._insert_nonfull(root, key, payload)
        self._entry_count += 1

    def _split_child(self, parent: _BTreeNode, index: int) -> None:
        t = self._t
        child = parent.children[index]
        sibling = _BTreeNode()
        # Median moves up; right half moves to the new sibling.
        parent.keys.insert(index, child.keys[t - 1])
        parent.payloads.insert(index, child.payloads[t - 1])
        sibling.keys = child.keys[t:]
        sibling.payloads = child.payloads[t:]
        child.keys = child.keys[: t - 1]
        child.payloads = child.payloads[: t - 1]
        if not child.is_leaf:
            sibling.children = child.children[t:]
            child.children = child.children[:t]
        parent.children.insert(index + 1, sibling)

    def _insert_nonfull(self, node: _BTreeNode, key: Any, payload: Any) -> None:
        while True:
            index = _lower_bound(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.payloads[index].append(payload)
                return
            if node.is_leaf:
                node.keys.insert(index, key)
                node.payloads.insert(index, [payload])
                self._distinct_keys += 1
                return
            child = node.children[index]
            if len(child.keys) == 2 * self._t - 1:
                self._split_child(node, index)
                if key == node.keys[index]:
                    node.payloads[index].append(payload)
                    return
                if key > node.keys[index]:
                    index += 1
            node = node.children[index]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def search(self, key: Any) -> list[Any]:
        """All payloads stored under ``key`` (empty list if absent)."""
        node = self._root
        while True:
            index = _lower_bound(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                return list(node.payloads[index])
            if node.is_leaf:
                return []
            node = node.children[index]

    def __contains__(self, key: Any) -> bool:
        return bool(self.search(key))

    def range_scan(
        self, low: Optional[Any] = None, high: Optional[Any] = None
    ) -> Iterator[tuple[Any, Any]]:
        """Yield ⟨key, payload⟩ entries with ``low <= key <= high``.

        ``None`` bounds are open; duplicates yield one tuple per stored
        payload.  This is the operation translated value predicates compile
        to (Fig. 7a turns every ``=``/``<``/... into a B-tree range query).
        """
        yield from self._scan(self._root, low, high)

    def _scan(
        self, node: _BTreeNode, low: Optional[Any], high: Optional[Any]
    ) -> Iterator[tuple[Any, Any]]:
        start = 0 if low is None else _lower_bound(node.keys, low)
        for index in range(start, len(node.keys) + 1):
            if not node.is_leaf:
                # Descend left of keys[index] unless everything there < low.
                yield from self._scan(node.children[index], low, high)
            if index == len(node.keys):
                break
            key = node.keys[index]
            if high is not None and key > high:
                return
            if low is None or key >= low:
                for payload in node.payloads[index]:
                    yield key, payload

    def items(self) -> Iterator[tuple[Any, Any]]:
        """All entries in key order."""
        yield from self.range_scan(None, None)

    def keys(self) -> Iterator[Any]:
        """Distinct keys in order."""
        previous_sentinel = object()
        previous: Any = previous_sentinel
        for key, _ in self.items():
            if previous is previous_sentinel or key != previous:
                yield key
                previous = key

    def min_key(self) -> Any:
        """Smallest key (raises on an empty tree) — supports MIN queries."""
        node = self._root
        if not node.keys:
            raise KeyError("empty tree")
        while not node.is_leaf:
            node = node.children[0]
        return node.keys[0]

    def max_key(self) -> Any:
        """Largest key (raises on an empty tree) — supports MAX queries."""
        node = self._root
        if not node.keys:
            raise KeyError("empty tree")
        while not node.is_leaf:
            node = node.children[-1]
        return node.keys[-1]

    # ------------------------------------------------------------------
    # Invariant checking (for tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise AssertionError if any B-tree invariant is violated."""
        leaf_depths: set[int] = set()
        self._check_node(self._root, None, None, is_root=True, depth=0,
                         leaf_depths=leaf_depths)
        assert len(leaf_depths) <= 1, "leaves at differing depths"

    def _check_node(
        self,
        node: _BTreeNode,
        low: Optional[Any],
        high: Optional[Any],
        is_root: bool,
        depth: int,
        leaf_depths: set[int],
    ) -> None:
        t = self._t
        assert len(node.keys) == len(node.payloads)
        if not is_root:
            assert len(node.keys) >= t - 1, "underfull node"
        assert len(node.keys) <= 2 * t - 1, "overfull node"
        assert node.keys == sorted(node.keys), "unsorted keys"
        for key in node.keys:
            if low is not None:
                assert key > low, "key below subtree bound"
            if high is not None:
                assert key < high, "key above subtree bound"
        for payload_list in node.payloads:
            assert payload_list, "empty payload list"
        if node.is_leaf:
            leaf_depths.add(depth)
            return
        assert len(node.children) == len(node.keys) + 1, "child count mismatch"
        bounds = [low] + node.keys + [high]
        for index, child in enumerate(node.children):
            self._check_node(
                child,
                bounds[index],
                bounds[index + 1],
                is_root=False,
                depth=depth + 1,
                leaf_depths=leaf_depths,
            )


def _lower_bound(keys: list[Any], key: Any) -> int:
    """First index whose key is >= ``key`` (binary search)."""
    low, high = 0, len(keys)
    while low < high:
        mid = (low + high) // 2
        if keys[mid] < key:
            low = mid + 1
        else:
            high = mid
    return low
