"""The Figure 2 health-care database and Example 3.1 security constraints.

The database reproduces the paper's running example exactly: a hospital
with two patients (Betty and Matt), their SSNs, treatments (disease +
doctor), ages and insurance policies with coverage attributes.  The
Example 3.1 constraint set protects insurance elements, the pname↔SSN and
pname↔disease associations, and the disease↔doctor association.
"""

from __future__ import annotations

from repro.core.constraints import SecurityConstraint, parse_constraints
from repro.xmldb.builder import TreeBuilder
from repro.xmldb.node import Document

#: Example 3.1, verbatim.
HEALTHCARE_CONSTRAINTS = [
    "//insurance",
    "//patient:(/pname, /SSN)",
    "//patient:(/pname, //disease)",
    "//treat:(/disease, /doctor)",
]


def build_healthcare_database() -> Document:
    """The Figure 2 instance."""
    builder = TreeBuilder("hospital")
    with builder.element("patient"):
        builder.leaf("pname", "Betty")
        builder.leaf("SSN", "763895")
        with builder.element("treat"):
            builder.leaf("disease", "diarrhea")
            builder.leaf("doctor", "Smith")
        with builder.element("treat"):
            builder.leaf("disease", "diarrhea")
            builder.leaf("doctor", "Walker")
        builder.leaf("age", "35")
        with builder.element("insurance"):
            builder.leaf("policy#", "34221")
            builder.leaf("policy#", "26544")
            builder.attribute("coverage", "1000000")
    with builder.element("patient"):
        builder.leaf("pname", "Matt")
        builder.leaf("SSN", "276543")
        with builder.element("treat"):
            builder.leaf("disease", "leukemia")
            builder.leaf("doctor", "Brown")
        builder.leaf("age", "40")
        with builder.element("insurance"):
            builder.leaf("policy#", "26544")
            builder.leaf("policy#", "78543")
            builder.attribute("coverage", "10000")
    return builder.document()


def healthcare_constraints() -> list[SecurityConstraint]:
    """Example 3.1 as parsed constraints."""
    return parse_constraints(HEALTHCARE_CONSTRAINTS)


#: The Figure 7(b) running-example query.
EXAMPLE_QUERY = "//patient[.//insurance//@coverage>=10000]//SSN"
