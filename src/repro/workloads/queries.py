"""Query workload generation: the Qs / Qm / Ql classes of §7.1.

"We created three kinds of queries for each encrypted document: (1) Qs,
the queries output the children node of the root of the document, (2) Qm,
the queries output the nodes on the [h/2] level, where h is the depth of
the document tree, and (3) Ql, the queries output the leaf nodes.  For
each category of queries, we create 10 queries and report the average."

The generator derives the tag-path population of a document, buckets paths
by output depth, and emits deterministic query sets for each class.  A
configurable fraction of queries carries a value predicate drawn from real
values in the document, so the value-index path is exercised too.
"""

from __future__ import annotations

from collections import defaultdict

from repro.crypto.prf import DeterministicRandom
from repro.xmldb.node import Attribute, Document, Element
from repro.xmldb.stats import depth as document_depth


def _tag_paths(document: Document) -> dict[int, set[tuple[str, ...]]]:
    """All root-to-node tag paths, bucketed by depth (root = depth 0)."""
    by_depth: dict[int, set[tuple[str, ...]]] = defaultdict(set)
    for element in document.elements():
        path = tuple(
            ancestor.tag
            for ancestor in reversed(list(element.ancestors()))
        ) + (element.tag,)
        by_depth[len(path) - 1].add(path)
    return by_depth


def _leaf_paths(document: Document) -> set[tuple[str, ...]]:
    paths: set[tuple[str, ...]] = set()
    for leaf in document.leaves():
        if isinstance(leaf, Attribute):
            owner = leaf.parent
            assert isinstance(owner, Element)
            base = tuple(
                ancestor.tag
                for ancestor in reversed(list(owner.ancestors()))
            ) + (owner.tag, f"@{leaf.name}")
        else:
            base = tuple(
                ancestor.tag
                for ancestor in reversed(list(leaf.ancestors()))
            ) + (leaf.tag,)
        paths.add(base)
    return paths


def _sample_value(
    document: Document, field: str, rng: DeterministicRandom
) -> str | None:
    """A real value of a leaf field, for predicate queries."""
    values = []
    for leaf in document.leaves():
        name = (
            f"@{leaf.name}" if isinstance(leaf, Attribute) else getattr(leaf, "tag", None)
        )
        if name == field:
            value = leaf.text_value()
            if value is not None:
                values.append(value)
    if not values:
        return None
    return rng.choice(sorted(set(values)))


def _path_to_query(
    path: tuple[str, ...], rng: DeterministicRandom
) -> str:
    """Render a tag path as an XPath query, mixing / and // separators."""
    if len(path) == 1:
        return f"/{path[0]}"
    # Randomly compress a prefix with '//' about half the time.
    if len(path) > 2 and rng.randint(0, 1) == 1:
        cut = rng.randint(1, len(path) - 1)
        tail = "/".join(path[cut:])
        return f"//{tail}"
    return "/" + "/".join(path)


class QueryWorkload:
    """Deterministic Qs / Qm / Ql query sets for a document."""

    def __init__(
        self,
        document: Document,
        seed: int = 7,
        per_class: int = 10,
        predicate_fraction: float = 0.3,
    ) -> None:
        self._document = document
        self._rng = DeterministicRandom(
            seed.to_bytes(8, "big").rjust(16, b"\x00"), "queries"
        )
        self._per_class = per_class
        self._predicate_fraction = predicate_fraction
        self._by_depth = _tag_paths(document)
        self._leaves = sorted(_leaf_paths(document))
        self._height = document_depth(document)

    def qs(self) -> list[str]:
        """Queries whose output is a child of the root."""
        paths = sorted(self._by_depth.get(1, set()))
        return self._emit(paths)

    def qm(self) -> list[str]:
        """Queries whose output sits at the ⌈h/2⌉ level."""
        target = max(1, self._height // 2)
        paths = sorted(self._by_depth.get(target, set()))
        if not paths:  # very shallow documents
            paths = sorted(self._by_depth.get(1, set()))
        return self._emit(paths)

    def ql(self) -> list[str]:
        """Queries whose output is a leaf (value-bearing) node."""
        return self._emit(self._leaves, allow_predicates=True)

    def by_class(self) -> dict[str, list[str]]:
        return {"Qs": self.qs(), "Qm": self.qm(), "Ql": self.ql()}

    def _emit(
        self,
        paths: list[tuple[str, ...]],
        allow_predicates: bool = False,
    ) -> list[str]:
        if not paths:
            return []
        queries = []
        for _ in range(self._per_class):
            path = self._rng.choice(paths)
            query = self._render(path, allow_predicates)
            queries.append(query)
        return queries

    def _render(
        self, path: tuple[str, ...], allow_predicates: bool
    ) -> str:
        attribute_tail = path[-1].startswith("@")
        render_path = path
        query = _path_to_query(render_path, self._rng)
        if (
            allow_predicates
            and not attribute_tail
            and self._rng.uniform() < self._predicate_fraction
        ):
            value = _sample_value(self._document, path[-1], self._rng)
            if value is not None:
                # Constrain the output leaf's own value: //a/b[.='v'].
                escaped = value.replace("'", "")
                query += f"[.='{escaped}']"
        return query
