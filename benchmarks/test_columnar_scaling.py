"""Columnar DSI backend — scaling gates for the plane re-encoding.

The columnar backend re-encodes the DSI index as flat sorted plane
arrays and persists them in a mmap-able column store, so a server boots
from a hosted save without materializing the object entry rows.  This
benchmark measures the three claims head-to-head on identical persisted
inputs, at 10× and 100× the paper's base XMark document:

* **cold structural join** (10× doc) — time from persisted index bytes
  to the first join answered: the object path must materialize every
  ``IndexEntry`` before it can join, the columnar path attaches the
  mmapped planes and sweeps them directly.  Gate: **≥3× speedup**.
* **startup memory** (100× doc) — index heap after boot: object-row
  materialization vs. ``load_columns`` + the lazy index façade.
  Gate: columnar **<25%** of the object backend's index memory.
* **bulk-load throughput** — ``ColumnarPlanes.from_records`` streaming
  persisted records straight into planes, no entry list ever built.
  Gate: at least the object materialization rate.

Results land as a table under ``benchmarks/results/`` and as
machine-readable ``BENCH_columnar.json`` at the repository root.
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc

import pytest

from repro.bench.harness import format_table
from repro.core.columnar import (
    ColumnarPlanes,
    LazyStructuralIndex,
    match_pattern_columnar,
)
from repro.core.colstore import load_columns
from repro.core.storage import index_from_records, load_system, save_system
from repro.core.structural_join import match_pattern
from repro.core.system import SecureXMLSystem
from repro.workloads.xmark import build_xmark_database, xmark_constraints

from conftest import BENCH_TRIALS, write_result

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_columnar.json")
MASTER_KEY = b"columnar-benchmark-master-key-01"

#: the paper-scale base document is 100 persons (conftest XMARK_PERSONS);
#: the gates run at 10× and 100× that, overridable for bigger sweeps
COLD_PERSONS = int(os.environ.get("REPRO_COLUMNAR_PERSONS", "1000"))
LARGE_PERSONS = int(os.environ.get("REPRO_COLUMNAR_LARGE_PERSONS", "10000"))

#: join-heavy probes spanning child chains and descendant axes
JOIN_QUERIES = (
    "//person/name",
    "//person/address/street",
    "//open_auctions//current",
    "//auction/itemref",
)

_REPORT: dict[str, object] = {
    "trials": BENCH_TRIALS,
    "cold_persons": COLD_PERSONS,
    "large_persons": LARGE_PERSONS,
}


def _write_report() -> None:
    with open(BENCH_JSON, "w", encoding="utf-8") as handle:
        json.dump(_REPORT, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _host_and_save(tmp_path_factory, person_count: int, label: str):
    doc = build_xmark_database(person_count=person_count, seed=41)
    system = SecureXMLSystem.host(
        doc, xmark_constraints(), scheme="opt", master_key=MASTER_KEY
    )
    directory = str(tmp_path_factory.mktemp(label))
    save_system(system, directory)
    return directory, system


@pytest.fixture(scope="module")
def cold_saved(tmp_path_factory):
    """10× document, hosted once and persisted."""
    return _host_and_save(tmp_path_factory, COLD_PERSONS, "columnar-cold")


@pytest.fixture(scope="module")
def large_saved(tmp_path_factory):
    """100× document, hosted once and persisted."""
    return _host_and_save(tmp_path_factory, LARGE_PERSONS, "columnar-large")


@pytest.fixture(scope="module")
def cold_inputs(cold_saved):
    """Shared, untimed boot inputs: parsed records, node map, values,
    translated probes.  Both index-preparation paths consume exactly
    these, so the timed regions differ only in the subsystem under
    test."""
    directory, system = cold_saved
    with open(os.path.join(directory, "server_meta.json")) as handle:
        meta = json.load(handle)
    loaded = load_system(directory, MASTER_KEY, backend="columnar")
    node_map = loaded.server._node_map()
    values = loaded.server._values
    translated = [system.client.translate(q) for q in JOIN_QUERIES]
    return directory, meta, node_map, values, translated


def _time_object_cold(meta, node_map, values, translated) -> float:
    """Persisted records → object index → every probe joined."""
    start = time.perf_counter()
    index = index_from_records(
        meta["dsi"], meta["block_table"], node_map.get
    )
    for query in translated:
        match_pattern(query, index, values)
    return time.perf_counter() - start


def _time_columnar_cold(directory, node_map, values, translated) -> float:
    """mmapped planes → lazy index → every probe joined, no hydration."""
    start = time.perf_counter()
    planes = load_columns(directory)
    index = LazyStructuralIndex(planes, node_map.get)
    attached = index.columnar()
    for query in translated:
        match_pattern_columnar(query, attached, values, node_map.get)
    elapsed = time.perf_counter() - start
    assert not index.hydrated, "cold columnar join must stay plane-native"
    return elapsed


def test_cold_join_speedup(cold_inputs):
    """Cold structural join at 10×: columnar ≥3× the object path."""
    directory, meta, node_map, values, translated = cold_inputs

    object_s = min(
        _time_object_cold(meta, node_map, values, translated)
        for _ in range(BENCH_TRIALS)
    )
    columnar_s = min(
        _time_columnar_cold(directory, node_map, values, translated)
        for _ in range(BENCH_TRIALS)
    )
    speedup = object_s / columnar_s

    # Answers must be identical before the timing means anything.
    index = index_from_records(
        meta["dsi"], meta["block_table"], node_map.get
    )
    planes = load_columns(directory)
    for query in translated:
        object_result = match_pattern(query, index, values)
        columnar_result = match_pattern_columnar(
            query, planes, values, node_map.get
        )
        assert [e.interval for e in object_result.output_entries] == [
            e.interval for e in columnar_result.output_entries
        ]
        assert (
            object_result.candidate_counts
            == columnar_result.candidate_counts
        )

    _REPORT["cold_join"] = {
        "entry_count": len(meta["dsi"]),
        "object_s": object_s,
        "columnar_s": columnar_s,
        "speedup": speedup,
        "queries": list(JOIN_QUERIES),
    }
    _write_report()
    write_result(
        "columnar_cold_join",
        format_table(
            ["backend", "cold join (s)", "speedup"],
            [
                ["object", object_s, 1.0],
                ["columnar", columnar_s, speedup],
            ],
            title=(
                f"Cold structural join, {COLD_PERSONS}-person XMark "
                f"({len(meta['dsi'])} index entries, best of "
                f"{BENCH_TRIALS})"
            ),
        ),
    )
    assert speedup >= 3.0, (
        f"cold-join speedup {speedup:.2f}x below the 3x gate "
        f"(object {object_s:.4f}s, columnar {columnar_s:.4f}s)"
    )


def test_startup_memory_and_time(large_saved):
    """Index boot at 100×: mmap startup under 25% of object-row heap."""
    directory, _system = large_saved
    with open(os.path.join(directory, "server_meta.json")) as handle:
        meta = json.load(handle)
    loaded = load_system(directory, MASTER_KEY, backend="columnar")
    node_map = loaded.server._node_map()

    tracemalloc.start()
    start = time.perf_counter()
    object_index = index_from_records(
        meta["dsi"], meta["block_table"], node_map.get
    )
    object_s = time.perf_counter() - start
    object_bytes, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert object_index.entries  # keep the index alive through the read

    tracemalloc.start()
    start = time.perf_counter()
    planes = load_columns(directory)
    lazy_index = LazyStructuralIndex(planes, node_map.get)
    columnar_s = time.perf_counter() - start
    columnar_bytes, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert not lazy_index.hydrated

    ratio = columnar_bytes / object_bytes
    _REPORT["startup"] = {
        "entry_count": len(meta["dsi"]),
        "object_bytes": object_bytes,
        "columnar_bytes": columnar_bytes,
        "memory_ratio": ratio,
        "object_s": object_s,
        "columnar_s": columnar_s,
    }
    _write_report()
    write_result(
        "columnar_startup",
        format_table(
            ["backend", "index heap (MiB)", "boot (s)"],
            [
                ["object", object_bytes / 2**20, object_s],
                ["columnar (mmap)", columnar_bytes / 2**20, columnar_s],
            ],
            title=(
                f"Index startup, {LARGE_PERSONS}-person XMark "
                f"({len(meta['dsi'])} index entries)"
            ),
        ),
    )
    assert ratio < 0.25, (
        f"mmap startup used {ratio:.1%} of the object index heap "
        f"(gate: <25%)"
    )


def test_bulk_load_throughput(cold_inputs):
    """from_records streams planes at least as fast as object rows."""
    _directory, meta, node_map, _values, _translated = cold_inputs
    records = meta["dsi"]

    object_s = min(
        _timed(
            lambda: index_from_records(
                records, meta["block_table"], node_map.get
            )
        )
        for _ in range(BENCH_TRIALS)
    )
    bulk_s = min(
        _timed(
            lambda: ColumnarPlanes.from_records(
                records, meta["block_table"]
            )
        )
        for _ in range(BENCH_TRIALS)
    )
    throughput = len(records) / bulk_s

    planes = ColumnarPlanes.from_records(records, meta["block_table"])
    assert planes.entry_count == len(records)

    _REPORT["bulk_load"] = {
        "entry_count": len(records),
        "object_rows_s": object_s,
        "from_records_s": bulk_s,
        "entries_per_s": throughput,
    }
    _write_report()
    write_result(
        "columnar_bulk_load",
        format_table(
            ["ingest path", "time (s)", "entries/s"],
            [
                ["object rows", object_s, len(records) / object_s],
                ["from_records (planes)", bulk_s, throughput],
            ],
            title=(
                f"Bulk load, {len(records)} persisted records "
                f"(best of {BENCH_TRIALS})"
            ),
        ),
    )
    assert bulk_s <= object_s, (
        f"plane bulk-load ({bulk_s:.4f}s) slower than object-row "
        f"materialization ({object_s:.4f}s)"
    )


def _timed(thunk) -> float:
    start = time.perf_counter()
    thunk()
    return time.perf_counter() - start
