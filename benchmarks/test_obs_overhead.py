"""E-obs — tracing overhead gate for the observability layer.

The observability layer promises "always-on" tracing: every query gets a
span tree, latency histograms and a slow-log entry.  That promise is only
tenable if the instrumentation is cheap, so this benchmark runs the same
warm repeated-query batch (the hot-path workload of ``test_hotpath.py``)
on two otherwise-identical systems — observability enabled vs.
``observability=False`` — and gates the enabled path's throughput
regression.

The gate passes when either

* the warm batch is within ``REPRO_OBS_OVERHEAD`` (default 5%) of the
  disabled baseline, or
* the absolute per-query cost is under a tiny floor (50µs) — on a batch
  this fast, the ratio is measuring timer noise, not instrumentation.

Results are appended to ``BENCH_hotpath.json`` as an ``obs_overhead``
series (read-modify-write, so the hot-path numbers survive) and a table
under ``benchmarks/results/``.
"""

from __future__ import annotations

import gc
import json
import os
import time

import pytest

from repro.bench.harness import format_table, trimmed_mean
from repro.core.system import SecureXMLSystem
from repro.workloads.xmark import xmark_constraints
from repro.xpath.compiler import UnsupportedQuery

from conftest import BENCH_TRIALS, write_result

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_hotpath.json")
MASTER_KEY = b"hotpath-benchmark-master-key-001"

#: allowed warm-throughput regression with tracing on (ratio - 1).
OVERHEAD_LIMIT = float(os.environ.get("REPRO_OBS_OVERHEAD", "0.05"))
#: below this per-query cost the ratio gate measures noise, not work.
ABSOLUTE_FLOOR_S = 50e-6


def _append_series(key: str, payload: object) -> None:
    """Read-modify-write ``BENCH_hotpath.json`` (other series survive)."""
    report: dict[str, object] = {}
    if os.path.exists(BENCH_JSON):
        with open(BENCH_JSON, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    report[key] = payload
    with open(BENCH_JSON, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


@pytest.fixture(scope="module")
def obs_queries(xmark_doc, xmark_queries):
    probe = SecureXMLSystem.host(
        xmark_doc, xmark_constraints(), scheme="opt", master_key=MASTER_KEY
    )
    queries = []
    for query_class in ("Qs", "Qm"):
        for query in xmark_queries[query_class]:
            try:
                probe.client.translate(query)
            except UnsupportedQuery:
                continue
            if query not in queries:
                queries.append(query)
    assert queries
    return queries


def _timed_warm(system: SecureXMLSystem, queries: list[str]) -> float:
    system.execute_many(queries)  # warm every cache layer
    gc.collect()
    gc.disable()  # cyclic node graphs; see test_parallel_engine
    try:
        samples = []
        for _ in range(max(BENCH_TRIALS, 3)):
            started = time.perf_counter()
            system.execute_many(queries)
            samples.append(time.perf_counter() - started)
    finally:
        gc.enable()
    return trimmed_mean(samples)


def test_tracing_overhead_on_warm_queries(xmark_doc, obs_queries):
    """Enabled observability stays within the throughput gate."""
    constraints = xmark_constraints()
    enabled = SecureXMLSystem.host(
        xmark_doc, constraints, scheme="opt", master_key=MASTER_KEY
    )
    disabled = SecureXMLSystem.host(
        xmark_doc,
        constraints,
        scheme="opt",
        master_key=MASTER_KEY,
        observability=False,
    )
    assert enabled.observability().enabled
    assert not disabled.observability().enabled

    queries = obs_queries
    disabled_s = _timed_warm(disabled, queries)
    enabled_s = _timed_warm(enabled, queries)
    ratio = enabled_s / disabled_s if disabled_s > 0 else 1.0
    per_query_delta = (enabled_s - disabled_s) / len(queries)

    # The enabled system actually recorded things while the disabled one
    # stayed dark — otherwise the gate is comparing identical code paths.
    on = enabled.observability().metrics.snapshot()["histograms"]
    off = disabled.observability().metrics.snapshot()["histograms"]
    assert on["query_seconds"]["count"] > 0
    assert off["query_seconds"]["count"] == 0

    rows = [
        ["observability off", disabled_s, 1.0],
        ["observability on", enabled_s, ratio],
    ]
    write_result(
        "obs_overhead",
        format_table(
            ["path", "t_batch", "ratio"],
            rows,
            f"Observability — warm batch of {len(queries)} queries, "
            f"overhead {max(ratio - 1.0, 0.0) * 100:.1f}% "
            f"(limit {OVERHEAD_LIMIT * 100:.0f}%)",
        ),
    )
    _append_series(
        "obs_overhead",
        {
            "query_count": len(queries),
            "disabled_batch_s": disabled_s,
            "enabled_batch_s": enabled_s,
            "ratio": ratio,
            "per_query_delta_s": per_query_delta,
            "limit_ratio": 1.0 + OVERHEAD_LIMIT,
        },
    )
    assert ratio <= 1.0 + OVERHEAD_LIMIT or per_query_delta <= (
        ABSOLUTE_FLOOR_S
    ), (
        f"tracing overhead {ratio:.3f}x exceeds the "
        f"{1.0 + OVERHEAD_LIMIT:.2f}x gate "
        f"({per_query_delta * 1e6:.1f}µs/query)"
    )
