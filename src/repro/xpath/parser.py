"""Recursive-descent parser for the XPath fragment.

Grammar (abbreviations desugared the XPath 1.0 way)::

    path       := '/'? step ('/' step | '//' step)*
                | '//' step ('/' step | '//' step)*
    step       := '.' | '..'
                | axis? nodetest predicate*
    axis       := NAME '::' | '@'
    nodetest   := NAME | '*'
    predicate  := '[' predexpr ']'
    predexpr   := NUMBER                       (position)
                | relpath (OP literal)?        (existence / comparison)
    literal    := STRING | NUMBER

``//`` is desugared to ``/descendant-or-self::*/``, ``.`` to ``self::*`` and
``..`` to ``parent::*``, so the evaluator only ever sees explicit axes.
"""

from __future__ import annotations

from repro.xpath import ast
from repro.xpath.lexer import (
    AT,
    AXIS_SEP,
    DOT,
    DOTDOT,
    DOUBLE_SLASH,
    END,
    LBRACKET,
    LPAREN,
    NAME,
    NUMBER,
    OPERATOR,
    RBRACKET,
    RPAREN,
    SLASH,
    STAR,
    STRING,
    Token,
    XPathSyntaxError,
    tokenize,
)


def parse_xpath(text: str) -> ast.LocationPath:
    """Parse an XPath expression string into a :class:`LocationPath`."""
    parser = _Parser(tokenize(text))
    path = parser.parse_path()
    parser.expect(END)
    return path


class _Parser:
    """Token-stream cursor shared with the security-constraint parser."""

    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.index = 0

    # ------------------------------------------------------------------
    # Cursor helpers
    # ------------------------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.current
        self.index += 1
        return token

    def accept(self, kind: str) -> Token | None:
        if self.current.kind == kind:
            return self.advance()
        return None

    def expect(self, kind: str) -> Token:
        if self.current.kind != kind:
            raise XPathSyntaxError(
                f"expected {kind}, found {self.current.kind} "
                f"({self.current.value!r})",
                self.current.position,
            )
        return self.advance()

    # ------------------------------------------------------------------
    # Productions
    # ------------------------------------------------------------------
    def parse_path(self) -> ast.LocationPath:
        steps: list[ast.Step] = []
        absolute = False

        if self.accept(DOUBLE_SLASH):
            absolute = True
            steps.append(_descendant_or_self_star())
        elif self.accept(SLASH):
            absolute = True

        steps.append(self.parse_step())
        while True:
            if self.accept(DOUBLE_SLASH):
                steps.append(_descendant_or_self_star())
                steps.append(self.parse_step())
            elif self.accept(SLASH):
                steps.append(self.parse_step())
            else:
                break
        return ast.LocationPath(absolute, tuple(steps))

    def parse_step(self) -> ast.Step:
        if self.accept(DOT):
            base = ast.Step(ast.AXIS_SELF, ast.NodeTest("*"))
        elif self.accept(DOTDOT):
            base = ast.Step(ast.AXIS_PARENT, ast.NodeTest("*"))
        elif self.accept(AT):
            test = self._parse_nodetest()
            base = ast.Step(ast.AXIS_ATTRIBUTE, test)
        else:
            # Either "axis::test" or a bare child-axis nodetest.
            if self.current.kind == NAME and self.tokens[self.index + 1].kind == AXIS_SEP:
                axis_name = self.advance().value
                self.expect(AXIS_SEP)
                if axis_name == "attribute":
                    axis = ast.AXIS_ATTRIBUTE
                elif axis_name in ast.ALL_AXES:
                    axis = axis_name
                else:
                    raise XPathSyntaxError(
                        f"unsupported axis {axis_name!r}", self.current.position
                    )
                test = self._parse_nodetest(allow_at=True)
                base = ast.Step(axis, test)
            else:
                test = self._parse_nodetest()
                base = ast.Step(ast.AXIS_CHILD, test)

        predicates: list[ast.Predicate] = []
        while self.accept(LBRACKET):
            predicates.append(ast.Predicate(self._parse_predicate_expr()))
            self.expect(RBRACKET)
        if predicates:
            return base.with_predicates(tuple(predicates))
        return base

    def _parse_nodetest(self, allow_at: bool = False) -> ast.NodeTest:
        if allow_at and self.accept(AT):
            # "attribute::@x" is redundant but harmless; treat as @x.
            pass
        if self.accept(STAR):
            return ast.NodeTest("*")
        token = self.expect(NAME)
        return ast.NodeTest(token.value)

    def _parse_predicate_expr(self) -> ast.PredicateExpr:
        if (
            self.current.kind == NAME
            and self.current.value in ("last", "position")
            and self.tokens[self.index + 1].kind == LPAREN
        ):
            return self._parse_position_function()
        if self.current.kind == NUMBER:
            token = self.advance()
            if self.current.kind == RBRACKET:
                value = float(token.value)
                if value != int(value) or value < 1:
                    raise XPathSyntaxError(
                        "positional predicate must be a positive integer",
                        token.position,
                    )
                return ast.Position(int(value))
            raise XPathSyntaxError(
                "a number can only appear alone in a predicate",
                token.position,
            )

        path = self.parse_path()
        operator = self.accept(OPERATOR)
        if operator is None:
            return ast.Exists(path)
        literal_token = self.current
        if literal_token.kind in (STRING, NUMBER):
            self.advance()
            return ast.Comparison(path, operator.value, literal_token.value)
        if literal_token.kind == NAME:
            # Bare-word literal (the paper writes [pname=Betty]); accept it
            # as a string for fidelity with the paper's notation.
            self.advance()
            return ast.Comparison(path, operator.value, literal_token.value)
        raise XPathSyntaxError(
            "expected literal after comparison operator",
            literal_token.position,
        )

    def _parse_position_function(self) -> ast.Position:
        """``last()`` and ``position() = n`` — both normalize to Position."""
        name_token = self.expect(NAME)
        self.expect(LPAREN)
        self.expect(RPAREN)
        if name_token.value == "last":
            return ast.Position(ast.LAST)
        operator = self.expect(OPERATOR)
        if operator.value != "=":
            raise XPathSyntaxError(
                "position() supports '=' comparisons only",
                operator.position,
            )
        number = self.expect(NUMBER)
        value = float(number.value)
        if value != int(value) or value < 1:
            raise XPathSyntaxError(
                "position() must compare against a positive integer",
                number.position,
            )
        return ast.Position(int(value))


def _descendant_or_self_star() -> ast.Step:
    return ast.Step(ast.AXIS_DESCENDANT_OR_SELF, ast.NodeTest("*"))
