"""Tests for the attack simulators, indistinguishability and belief tracking."""

from collections import Counter
from fractions import Fraction

import pytest

from repro.core.system import SecureXMLSystem
from repro.security.attacks import FrequencyAttack, SizeAttack
from repro.security.belief import BeliefTracker
from repro.security.indistinguishability import (
    breaks_association,
    indistinguishable,
    permute_field_values,
)
from repro.workloads.healthcare import build_healthcare_database
from repro.xmldb.stats import field_frequency


class TestFrequencyAttack:
    def test_cracks_naive_deterministic_encryption(self):
        """§4.1's motivation: plain per-leaf encryption leaks frequencies."""
        plaintext = Counter({"leukemia": 1, "diarrhea": 2, "flu": 5})
        # Naive deterministic encryption preserves the histogram.
        ciphertext = Counter({"AAA": 1, "BBB": 2, "CCC": 5})
        report = FrequencyAttack(plaintext).run(ciphertext, "disease")
        assert report.cracked_fraction == 1.0
        assert report.success_probability == 1

    def test_cannot_crack_decoy_encryption(self):
        """With decoys every ciphertext occurs once (Theorem 4.1)."""
        plaintext = Counter({"a": 3, "b": 4, "c": 5})
        ciphertext = Counter({f"c{i}": 1 for i in range(12)})
        report = FrequencyAttack(plaintext).run(ciphertext, "f")
        assert report.cracked == {}
        assert report.success_probability == Fraction(1, 27720)

    def test_partial_uniqueness_cracks_partially(self):
        plaintext = Counter({"x": 2, "y": 2, "z": 7})
        ciphertext = Counter({"C1": 2, "C2": 2, "C3": 7})
        report = FrequencyAttack(plaintext).run(ciphertext, "f")
        assert set(report.cracked) == {"z"}
        # The two frequency-2 values can still be swapped.
        assert report.success_probability == Fraction(1, 2)

    def test_scaling_breaks_total_count(self):
        """OPESS scaling: totals disagree, attacker falls to the bound."""
        plaintext = Counter({"a": 3, "b": 4})
        ciphertext = Counter({"c1": 9, "c2": 9, "c3": 12})  # scaled entries
        report = FrequencyAttack(plaintext).run(ciphertext, "f")
        assert report.cracked == {}
        assert report.success_probability < Fraction(1, 1)

    def test_real_system_opess_index_resists_attack(self):
        """Attack the actual B-tree histograms of a hosted system."""
        doc = build_healthcare_database()
        from repro.workloads.healthcare import healthcare_constraints

        system = SecureXMLSystem.host(
            doc, healthcare_constraints(), scheme="opt"
        )
        hosted = system.hosted
        for field, token in hosted.field_tokens.items():
            plaintext_histogram = field_frequency(doc, field)
            observed = hosted.value_index.ciphertext_histogram(token)
            report = FrequencyAttack(plaintext_histogram).run(observed, field)
            assert report.cracked == {}, field


class TestSizeAttack:
    def test_eliminates_differently_sized(self):
        attack = SizeAttack(observed_size=100)
        assert attack.surviving([100, 90, 100, 101]) == [0, 2]
        assert attack.eliminates(90)
        assert not attack.eliminates(100)


class TestIndistinguishability:
    def test_document_indistinguishable_from_itself(self):
        doc = build_healthcare_database()
        assert indistinguishable(doc, doc.clone())

    def test_permuted_candidate_indistinguishable(self):
        doc = build_healthcare_database()
        candidate = permute_field_values(doc, "doctor", seed=3)
        assert indistinguishable(doc, candidate)

    def test_permutation_preserves_histogram(self):
        doc = build_healthcare_database()
        candidate = permute_field_values(doc, "disease", seed=1)
        assert field_frequency(doc, "disease") == field_frequency(
            candidate, "disease"
        )

    def test_structurally_different_distinguishable(self):
        doc = build_healthcare_database()
        other = build_healthcare_database()
        other.root.children[0].detach()
        other.renumber()
        assert not indistinguishable(doc, other)

    def test_candidate_can_break_association(self):
        """The Theorem 4.1 candidate family: same stats, different secrets."""
        from repro.core.constraints import SecurityConstraint

        doc = build_healthcare_database()
        constraint = SecurityConstraint.parse("//treat:(/disease, /doctor)")
        broke = False
        for seed in range(10):
            candidate = permute_field_values(doc, "doctor", seed=seed)
            if breaks_association(doc, candidate, constraint):
                broke = True
                break
        assert broke


class TestBeliefTracker:
    def test_node_query_belief_flat(self):
        tracker = BeliefTracker()
        for _ in range(5):
            tracker.observe_node_query("B(//insurance)", candidate_tags=8)
        record = tracker.record("B(//insurance)")
        assert record.never_increased()
        assert record.current == Fraction(1, 8)

    def test_association_belief_drops_then_flat(self):
        tracker = BeliefTracker()
        for _ in range(4):
            tracker.observe_association_query(
                "B(p[q1=v1][q2=v2])", plaintext_values=5, ciphertext_values=15
            )
        record = tracker.record("B(p[q1=v1][q2=v2])")
        assert record.never_increased()
        assert record.history[0] == Fraction(1, 5)
        assert record.current == Fraction(1, 1001)

    def test_secure_aggregate(self):
        tracker = BeliefTracker()
        tracker.observe_node_query("a", 4)
        tracker.observe_association_query("b", 3, 9)
        tracker.observe_association_query("b", 3, 9)
        assert tracker.secure()

    def test_zero_candidates_rejected(self):
        tracker = BeliefTracker()
        with pytest.raises(ValueError):
            tracker.observe_node_query("a", 0)
