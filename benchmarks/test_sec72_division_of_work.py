"""E2 — §7.2: division of work between client and server.

The paper measured six per-query cost factors and observed that (a) the
query translation times on both sides are negligible, (b) transmission is
negligible on a LAN, and (c) decryption cost is the largest of the three
client/server processing factors.  This benchmark reproduces the stage
breakdown on the NASA-like database under the opt scheme.
"""

from repro.bench.harness import average_traces, format_table

from conftest import write_result


def _run(nasa_systems, nasa_queries):
    system = nasa_systems["opt"]
    rows = []
    stage_sums = {"t_server": 0.0, "t_decrypt": 0.0, "t_post": 0.0}
    translate_total = 0.0
    transfer_total = 0.0
    for query_class, queries in nasa_queries.items():
        traces = []
        for query in queries:
            # cold: the §7.2 breakdown is per independent query; a warm
            # pipeline (e.g. when another module already exercised the
            # shared systems) collapses the real stages and leaves only
            # the modelled transfer time.
            system.flush_caches()
            system.query(query)
            traces.append(system.last_trace)
        averaged = average_traces(traces)
        rows.append(
            [
                query_class,
                averaged["t_translate"],
                averaged["t_server"],
                averaged["t_transfer"],
                averaged["t_decrypt"],
                averaged["t_post"],
            ]
        )
        for stage in stage_sums:
            stage_sums[stage] += averaged[stage]
        translate_total += averaged["t_translate"]
        transfer_total += averaged["t_transfer"]
    return rows, stage_sums, translate_total, transfer_total


def test_division_of_work(benchmark, nasa_systems, nasa_queries):
    rows, stage_sums, translate_total, transfer_total = benchmark.pedantic(
        _run, args=(nasa_systems, nasa_queries), rounds=1, iterations=1
    )
    table = format_table(
        ["class", "t_translate", "t_server", "t_transfer(model)",
         "t_decrypt", "t_post"],
        rows,
        "§7.2 — division of work, NASA-like database, opt scheme (seconds)",
    )
    write_result("sec72_division_of_work", table)

    heavy_total = sum(stage_sums.values())
    # Paper: translation "negligible" (they measured ~1/3000 of server
    # time; we assert an order of magnitude conservatively).
    assert translate_total < 0.2 * heavy_total
    # Paper: transmission negligible on the 100 Mbps LAN model.  Their
    # testbed decrypted with 3DES on 2003 hardware, which buried the wire
    # under the crypto; our word-wise AES is an order of magnitude
    # faster, so the modelled wire's *share* is proportionally larger
    # even though its absolute time matches the paper's model.  Assert
    # it stays a clear minority of the per-query cost and strictly below
    # the decryption stage it was negligible against.
    assert transfer_total < 0.2 * heavy_total
    assert transfer_total < stage_sums["t_decrypt"]
    # Paper: the server query processing exceeds client post-processing
    # ("the whole dataset is used ... on the server, while only the
    # relevant data is used on the client").  The two are within a few
    # milliseconds of each other at benchmark scale, so assert with slack.
    assert stage_sums["t_server"] > 0.5 * stage_sums["t_post"]


def test_translation_time_vs_query_size(benchmark, nasa_systems):
    """§7.2's size claim: even a 20-node query translates in milliseconds.

    "even for document size of 50MB and the query of 20 nodes, the
    translation time on client is less than 5ms and the query translation
    time on server is around 13ms".  We grow a descendant chain with value
    predicates up to 20 query nodes and time the client translation.
    """
    import time

    from repro.bench.harness import format_table

    system = nasa_systems["opt"]

    def build_query(node_count: int) -> str:
        # Alternate structural steps and predicates to reach the target
        # node count: //dataset[title]//reference//source//journal...
        steps = ["//dataset[altname]", "//reference", "//source",
                 "//journal", "//author[initial]", "//last"]
        query = ""
        used = 0
        index = 0
        while used < node_count:
            query += steps[index % len(steps)]
            used += 2 if "[" in steps[index % len(steps)] else 1
            index += 1
        return query

    def run():
        rows = []
        for node_count in (2, 5, 10, 15, 20):
            query = build_query(node_count)
            started = time.perf_counter()
            for _ in range(20):
                system.client.translate(query)
            per_translation = (time.perf_counter() - started) / 20
            rows.append([node_count, per_translation * 1000.0])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["query nodes", "translation time (ms)"],
        rows,
        "§7.2 — client translation time vs query size (NASA, opt)",
    )
    write_result("sec72_translation_vs_query_size", table)

    # The paper's claim, with generous slack for pure Python: translating
    # a 20-node query stays in single-digit milliseconds.
    assert rows[-1][1] < 10.0
