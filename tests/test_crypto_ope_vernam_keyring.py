"""Tests for order-preserving encryption, the tag cipher and the keyring."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.keyring import ClientKeyring
from repro.crypto.ope import OrderPreservingEncryption
from repro.crypto.vernam import DeterministicTagCipher, VernamCipher


def small_ope(key: bytes = b"k" * 16) -> OrderPreservingEncryption:
    return OrderPreservingEncryption(key, domain_bits=16, expansion_bits=8)


class TestOPE:
    def test_strictly_monotone_on_sample(self):
        ope = small_ope()
        values = [0, 1, 2, 17, 500, 40_000, (1 << 16) - 1]
        ciphertexts = [ope.encrypt_int(v) for v in values]
        assert ciphertexts == sorted(ciphertexts)
        assert len(set(ciphertexts)) == len(values)

    @given(
        st.lists(
            st.integers(min_value=0, max_value=(1 << 16) - 1),
            min_size=2,
            max_size=30,
            unique=True,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_order_preservation_property(self, values):
        ope = small_ope()
        encrypted = {v: ope.encrypt_int(v) for v in values}
        ordered = sorted(values)
        for smaller, larger in zip(ordered, ordered[1:]):
            assert encrypted[smaller] < encrypted[larger]

    @given(st.integers(min_value=0, max_value=(1 << 16) - 1))
    @settings(max_examples=40, deadline=None)
    def test_decrypt_inverts(self, value):
        ope = small_ope()
        assert ope.decrypt_int(ope.encrypt_int(value)) == value

    def test_invalid_ciphertext_rejected(self):
        ope = small_ope()
        valid = ope.encrypt_int(100)
        sibling = ope.encrypt_int(101)
        # Some integer strictly between two consecutive ciphertexts cannot
        # decrypt (the range is larger than the domain).
        if sibling - valid > 1:
            with pytest.raises(ValueError):
                ope.decrypt_int(valid + 1)

    def test_key_separation(self):
        a = small_ope(b"a" * 16)
        b = small_ope(b"b" * 16)
        values = list(range(0, 1000, 97))
        assert [a.encrypt_int(v) for v in values] != [
            b.encrypt_int(v) for v in values
        ]

    def test_domain_bounds_enforced(self):
        ope = small_ope()
        with pytest.raises(ValueError):
            ope.encrypt_int(-1)
        with pytest.raises(ValueError):
            ope.encrypt_int(1 << 16)

    def test_float_interface(self):
        ope = OrderPreservingEncryption(b"k" * 16)
        low = ope.encrypt_float(23.45)
        high = ope.encrypt_float(24.35)
        assert low < high
        assert abs(ope.decrypt_float(low) - 23.45) < 1e-9

    def test_float_quantization_distinguishes_close_values(self):
        ope = OrderPreservingEncryption(b"k" * 16)
        assert ope.encrypt_float(1.00001) < ope.encrypt_float(1.00002)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            OrderPreservingEncryption(b"k" * 16, domain_bits=2)
        with pytest.raises(ValueError):
            OrderPreservingEncryption(b"k" * 16, expansion_bits=64)

    def test_deterministic_across_instances(self):
        first = small_ope()
        second = small_ope()
        for value in (0, 5, 1234):
            assert first.encrypt_int(value) == second.encrypt_int(value)


class TestVernam:
    def test_xor_roundtrip(self):
        pad = bytes(range(32))
        message = b"attack at dawn"
        ciphertext = VernamCipher.encrypt(message, pad)
        assert VernamCipher.decrypt(ciphertext, pad) == message

    def test_short_pad_rejected(self):
        with pytest.raises(ValueError):
            VernamCipher.encrypt(b"long message", b"pad")

    def test_perfect_secrecy_shape(self):
        # Any ciphertext is reachable from any equal-length plaintext under
        # some pad — the textbook perfect-security argument.
        message_a, message_b = b"yes", b"nor"
        ciphertext = VernamCipher.encrypt(message_a, b"\x10\x20\x30")
        pad_b = bytes(m ^ c for m, c in zip(message_b, ciphertext))
        assert VernamCipher.encrypt(message_b, pad_b) == ciphertext


class TestTagCipher:
    def test_deterministic_per_tag(self):
        cipher = DeterministicTagCipher(b"t" * 32)
        assert cipher.encrypt_tag("SSN") == cipher.encrypt_tag("SSN")

    def test_distinct_tags_distinct_tokens(self):
        cipher = DeterministicTagCipher(b"t" * 32)
        tags = ["SSN", "insurance", "pname", "disease", "@coverage", "a", "b"]
        tokens = {cipher.encrypt_tag(tag) for tag in tags}
        assert len(tokens) == len(tags)

    def test_token_shape(self):
        cipher = DeterministicTagCipher(b"t" * 32, token_length=12)
        token = cipher.encrypt_tag("patient")
        assert len(token) == 12
        assert all(c.isalnum() and not c.islower() for c in token)

    def test_decrypt_known(self):
        cipher = DeterministicTagCipher(b"t" * 32)
        token = cipher.encrypt_tag("treat")
        assert cipher.decrypt_tag(token) == "treat"

    def test_decrypt_unknown_rejected(self):
        cipher = DeterministicTagCipher(b"t" * 32)
        with pytest.raises(ValueError):
            cipher.decrypt_tag("NEVERSEEN1")

    def test_key_separation(self):
        a = DeterministicTagCipher(b"a" * 32)
        b = DeterministicTagCipher(b"b" * 32)
        assert a.encrypt_tag("SSN") != b.encrypt_tag("SSN")

    def test_known_tags_snapshot(self):
        cipher = DeterministicTagCipher(b"t" * 32)
        cipher.encrypt_tag("x")
        snapshot = cipher.known_tags()
        assert set(snapshot) == {"x"}

    def test_token_length_validated(self):
        with pytest.raises(ValueError):
            DeterministicTagCipher(b"t" * 32, token_length=2)


class TestKeyring:
    def test_minimum_key_length(self):
        with pytest.raises(ValueError):
            ClientKeyring(b"short")

    def test_determinism(self):
        a = ClientKeyring(b"m" * 16)
        b = ClientKeyring(b"m" * 16)
        assert a.block_iv(3) == b.block_iv(3)
        assert a.tag_cipher.encrypt_tag("x") == b.tag_cipher.encrypt_tag("x")
        assert a.ope.encrypt_int(5) == b.ope.encrypt_int(5)
        assert a.dsi_weight_stream().uniform() == b.dsi_weight_stream().uniform()

    def test_purpose_separation(self):
        keyring = ClientKeyring(b"m" * 16)
        assert keyring.block_iv(1) != keyring.block_iv(2)
        weights = keyring.dsi_weight_stream()
        decoys = keyring.decoy_stream()
        assert weights.uniform() != decoys.uniform()

    def test_field_streams_independent(self):
        keyring = ClientKeyring(b"m" * 16)
        a = keyring.opess_stream("age")
        b = keyring.opess_stream("income")
        assert a.uint(64) != b.uint(64)

    def test_from_passphrase(self):
        keyring = ClientKeyring.from_passphrase("hunter2")
        again = ClientKeyring.from_passphrase("hunter2")
        assert keyring.block_iv(1) == again.block_iv(1)

    def test_block_cipher_roundtrip(self):
        keyring = ClientKeyring(b"m" * 16)
        block = b"\x42" * 16
        cipher = keyring.block_cipher
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block
