"""SipHash-2-4, implemented from the Aumasson–Bernstein specification.

SipHash is a keyed pseudo-random function designed for short inputs.  The
reproduction uses it as the *hot-path* PRF — the OPE function evaluates one
PRF per bisection level and the deterministic randomness streams draw tens
of thousands of values per hosting — where HMAC-SHA256 (four full SHA-256
compressions per call in pure Python) would dominate the run time.
HMAC-SHA256 remains the key-derivation PRF; SipHash keys are derived from
it, so the hierarchy is still rooted in the hash.

Verified against the reference test vectors from the SipHash paper in the
test suite.
"""

from __future__ import annotations

_MASK64 = 0xFFFFFFFFFFFFFFFF


def _rotl(value: int, amount: int) -> int:
    return ((value << amount) | (value >> (64 - amount))) & _MASK64


def siphash24(key: bytes, message: bytes) -> int:
    """SipHash-2-4 of ``message`` under a 16-byte key; returns a 64-bit int.

    The compression rounds are manually unrolled with local variables —
    this function sits on the hottest path of the whole system (one call
    per OPE bisection level), and closure/function-call overhead in pure
    Python would roughly triple its cost.
    """
    if len(key) != 16:
        raise ValueError("SipHash requires a 16-byte key")
    k0 = int.from_bytes(key[:8], "little")
    k1 = int.from_bytes(key[8:], "little")

    v0 = k0 ^ 0x736F6D6570736575
    v1 = k1 ^ 0x646F72616E646F6D
    v2 = k0 ^ 0x6C7967656E657261
    v3 = k1 ^ 0x7465646279746573

    length = len(message)
    tail_length = length % 8

    def rounds(v0: int, v1: int, v2: int, v3: int, count: int):
        for _ in range(count):
            v0 = (v0 + v1) & _MASK64
            v1 = ((v1 << 13) | (v1 >> 51)) & _MASK64
            v1 ^= v0
            v0 = ((v0 << 32) | (v0 >> 32)) & _MASK64
            v2 = (v2 + v3) & _MASK64
            v3 = ((v3 << 16) | (v3 >> 48)) & _MASK64
            v3 ^= v2
            v0 = (v0 + v3) & _MASK64
            v3 = ((v3 << 21) | (v3 >> 43)) & _MASK64
            v3 ^= v0
            v2 = (v2 + v1) & _MASK64
            v1 = ((v1 << 17) | (v1 >> 47)) & _MASK64
            v1 ^= v2
            v2 = ((v2 << 32) | (v2 >> 32)) & _MASK64
        return v0, v1, v2, v3

    for offset in range(0, length - tail_length, 8):
        word = int.from_bytes(message[offset : offset + 8], "little")
        v3 ^= word
        v0, v1, v2, v3 = rounds(v0, v1, v2, v3, 2)
        v0 ^= word

    # Final block: remaining bytes plus the length in the top byte.
    final_word = (length & 0xFF) << 56
    if tail_length:
        final_word |= int.from_bytes(message[length - tail_length :], "little")
    v3 ^= final_word
    v0, v1, v2, v3 = rounds(v0, v1, v2, v3, 2)
    v0 ^= final_word

    v2 ^= 0xFF
    v0, v1, v2, v3 = rounds(v0, v1, v2, v3, 4)
    return (v0 ^ v1 ^ v2 ^ v3) & _MASK64


class SipPRF:
    """A keyed fast PRF returning 64-bit integers."""

    __slots__ = ("_key",)

    def __init__(self, key: bytes) -> None:
        if len(key) < 16:
            raise ValueError("SipPRF key must be at least 16 bytes")
        self._key = bytes(key[:16])

    def integer(self, message: bytes) -> int:
        """64-bit PRF output."""
        return siphash24(self._key, message)

    def block(self, message: bytes) -> bytes:
        """8-byte PRF output (for keystream-style uses)."""
        return siphash24(self._key, message).to_bytes(8, "little")
