"""Security constraints (§3.2).

A security constraint (SC) is the data owner's declaration of what must be
hidden from the untrusted server.  Two forms exist:

* a **node-type** constraint ``p`` — every element that the XPath expression
  ``p`` binds to is classified in its entirety (tag, structure and values);
* an **association** constraint ``p : (q1, q2)`` — for every binding ``x``
  of ``p``, the association between the values reached by ``q1`` and ``q2``
  in the context of ``x`` is classified, even though each value on its own
  may be public.

Each SC *captures* a set of queries (Example 3.1): a node-type SC captures
every query rooted in ``p``; an association SC captures the queries
``p[q1 = v1][q2 = v2]`` for every value pair that actually co-occurs.  The
enforcement obligation is that the server must not learn whether any
captured query has a non-empty answer (``D ⊨ A``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.xmldb.node import Attribute, Document, Element, Node
from repro.xpath import ast
from repro.xpath.evaluator import evaluate, evaluate_on_element
from repro.xpath.lexer import COLON, COMMA, END, LPAREN, RPAREN, tokenize
from repro.xpath.parser import _Parser


@dataclass(frozen=True)
class SecurityConstraint:
    """One parsed security constraint.

    ``context_path`` is ``p``.  For association constraints ``q1``/``q2``
    hold the two endpoint paths (already normalized to relative paths, as
    the paper's ``/pname`` notation means "child of the context node");
    for node-type constraints they are ``None``.
    """

    context_path: ast.LocationPath
    q1: Optional[ast.LocationPath] = None
    q2: Optional[ast.LocationPath] = None
    source: str = ""

    # ------------------------------------------------------------------
    # Parsing
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "SecurityConstraint":
        """Parse ``"//insurance"`` or ``"//patient:(/pname, /SSN)"``."""
        parser = _Parser(tokenize(text))
        context = parser.parse_path()
        if parser.current.kind == END:
            return cls(context_path=context, source=text.strip())
        parser.expect(COLON)
        parser.expect(LPAREN)
        q1 = _normalize_relative(parser.parse_path())
        parser.expect(COMMA)
        q2 = _normalize_relative(parser.parse_path())
        parser.expect(RPAREN)
        parser.expect(END)
        return cls(context_path=context, q1=q1, q2=q2, source=text.strip())

    @property
    def is_association(self) -> bool:
        return self.q1 is not None

    def __str__(self) -> str:
        if self.is_association:
            return f"{self.context_path}:({self.q1}, {self.q2})"
        return str(self.context_path)

    # ------------------------------------------------------------------
    # Bindings
    # ------------------------------------------------------------------
    def context_nodes(self, document: Document) -> list[Element]:
        """Elements that ``p`` binds to."""
        return [
            node
            for node in evaluate(document, self.context_path)
            if isinstance(node, Element)
        ]

    def endpoint_nodes(
        self, document: Document, which: int
    ) -> list[Node]:
        """All nodes bound by ``q1`` (which=1) or ``q2`` (which=2).

        Only meaningful for association constraints; the result is the
        union over all context bindings.
        """
        path = self._endpoint(which)
        nodes: list[Node] = []
        seen: set[int] = set()
        for context in self.context_nodes(document):
            for node in evaluate_on_element(context, path):
                if id(node) not in seen:
                    seen.add(id(node))
                    nodes.append(node)
        return nodes

    def association_pairs(
        self, document: Document
    ) -> Iterator[tuple[str, str]]:
        """Co-occurring (v1, v2) value pairs, one per context binding pair."""
        if not self.is_association:
            return
        for context in self.context_nodes(document):
            left_values = _leaf_values(
                evaluate_on_element(context, self._endpoint(1))
            )
            right_values = _leaf_values(
                evaluate_on_element(context, self._endpoint(2))
            )
            for v1 in left_values:
                for v2 in right_values:
                    yield (v1, v2)

    def _endpoint(self, which: int) -> ast.LocationPath:
        if not self.is_association:
            raise ValueError("node-type constraints have no endpoints")
        if which == 1:
            assert self.q1 is not None
            return self.q1
        if which == 2:
            assert self.q2 is not None
            return self.q2
        raise ValueError("endpoint selector must be 1 or 2")

    def endpoint_field(self, which: int) -> str:
        """Canonical field name of an endpoint (last step's tag or @attr).

        This is the vertex label in the constraint graph (§4.2, Fig. 8):
        the paper's graph "has a node for every tag appearing in the SCs".
        """
        path = self._endpoint(which)
        last = path.steps[-1]
        if last.axis == ast.AXIS_ATTRIBUTE:
            return f"@{last.test.name}"
        return last.test.name

    # ------------------------------------------------------------------
    # Captured queries and enforcement checking
    # ------------------------------------------------------------------
    def captured_queries(self, document: Document) -> list[str]:
        """Materialize the captured-query set for this SC on a database.

        Node-type SCs capture the context query itself (the representative
        of the family ``p``, ``p/a``, ``p//a``, ...); association SCs
        capture ``p[q1 = v1][q2 = v2]`` for every co-occurring pair.
        """
        if not self.is_association:
            return [str(self.context_path)]
        queries = []
        for v1, v2 in sorted(set(self.association_pairs(document))):
            queries.append(
                f"{self.context_path}[{self.q1}='{v1}'][{self.q2}='{v2}']"
            )
        return queries

    def holds(self, document: Document, captured_query: str) -> bool:
        """``D ⊨ A``: the captured query has a non-empty answer on D."""
        return bool(evaluate(document, captured_query))


def _normalize_relative(path: ast.LocationPath) -> ast.LocationPath:
    """Interpret SC endpoint paths relative to the context node.

    The paper writes ``/pname`` for "child pname of the context" and
    ``//disease`` for "descendant disease"; our XPath parser marks both
    absolute, so the SC parser strips the absoluteness.
    """
    return ast.LocationPath(False, path.steps)


def _leaf_values(nodes: list[Node]) -> list[str]:
    values = []
    for node in nodes:
        value = node.text_value()
        if value is not None:
            values.append(value)
    return values


def parse_constraints(lines: list[str]) -> list[SecurityConstraint]:
    """Parse a list of SC strings, skipping blanks and ``#`` comments."""
    constraints = []
    for line in lines:
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        constraints.append(SecurityConstraint.parse(stripped))
    return constraints
