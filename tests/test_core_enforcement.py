"""Tests for the independent enforcement checker (Theorem 4.1 conditions)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.enforcement import assert_enforced, check_enforcement
from repro.core.scheme import EncryptionScheme, build_scheme
from repro.xpath.evaluator import evaluate


class TestBuiltInSchemesEnforce:
    @pytest.mark.parametrize("kind", ["opt", "app", "sub", "top", "leaf"])
    def test_healthcare(self, kind, healthcare_doc, healthcare_scs):
        scheme = build_scheme(healthcare_doc, healthcare_scs, kind)
        assert check_enforcement(healthcare_doc, healthcare_scs, scheme) == []

    @pytest.mark.parametrize("kind", ["opt", "app", "sub", "top"])
    def test_nasa(self, kind, nasa_doc, nasa_scs):
        scheme = build_scheme(nasa_doc, nasa_scs, kind)
        assert check_enforcement(nasa_doc, nasa_scs, scheme) == []

    @pytest.mark.parametrize("kind", ["opt", "app"])
    def test_xmark(self, kind, xmark_doc, xmark_scs):
        scheme = build_scheme(xmark_doc, xmark_scs, kind)
        assert check_enforcement(xmark_doc, xmark_scs, scheme) == []


class TestViolationsDetected:
    def test_empty_scheme_violates_everything(
        self, healthcare_doc, healthcare_scs
    ):
        empty = EncryptionScheme("custom", frozenset())
        violations = check_enforcement(
            healthcare_doc, healthcare_scs, empty
        )
        # 2 insurance nodes + 3 association SCs across contexts.
        assert len(violations) >= 5
        assert any("insurance" in str(v) for v in violations)

    def test_node_constraint_violation_named(self, healthcare_doc, healthcare_scs):
        # Encrypt only one of the two insurance nodes.
        insurance = evaluate(healthcare_doc, "//insurance")
        partial = EncryptionScheme(
            "custom", frozenset({insurance[0].node_id})
        )
        violations = check_enforcement(
            healthcare_doc, [healthcare_scs[0]], partial
        )
        assert len(violations) == 1
        assert str(insurance[1].node_id) in violations[0].reason

    def test_association_needs_full_side(self, healthcare_doc, healthcare_scs):
        """Encrypting only ONE of Betty's diseases leaves the pair exposed."""
        diseases = evaluate(healthcare_doc, "//disease")
        partial = EncryptionScheme(
            "custom", frozenset({diseases[0].node_id})
        )
        name_disease = healthcare_scs[2]  # //patient:(/pname, //disease)
        violations = check_enforcement(
            healthcare_doc, [name_disease], partial
        )
        assert violations  # Betty's other disease + Matt's are exposed

    def test_either_side_suffices(self, healthcare_doc, healthcare_scs):
        """Encrypting all pnames (the other side) also enforces."""
        pnames = evaluate(healthcare_doc, "//pname")
        scheme = EncryptionScheme(
            "custom", frozenset(n.node_id for n in pnames)
        )
        name_disease = healthcare_scs[2]
        assert check_enforcement(
            healthcare_doc, [name_disease], scheme
        ) == []

    def test_insecure_hosting_flagged(self, healthcare_doc, healthcare_scs):
        scheme = build_scheme(healthcare_doc, healthcare_scs, "leaf")
        violations = check_enforcement(
            healthcare_doc, healthcare_scs, scheme, secure_hosting=False
        )
        assert any("decoys" in v.reason for v in violations)

    def test_assert_enforced_raises_with_report(
        self, healthcare_doc, healthcare_scs
    ):
        empty = EncryptionScheme("custom", frozenset())
        with pytest.raises(ValueError, match="does not enforce"):
            assert_enforced(healthcare_doc, healthcare_scs, empty)

    def test_assert_enforced_passes_silently(
        self, healthcare_doc, healthcare_scs
    ):
        scheme = build_scheme(healthcare_doc, healthcare_scs, "opt")
        assert_enforced(healthcare_doc, healthcare_scs, scheme)


class TestPropertyBuiltInsNeverUnderEncrypt:
    """The constructors satisfy the checker on random inputs."""

    @given(st.integers(min_value=3, max_value=12), st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_random_nasa_instances(self, dataset_count, seed):
        from repro.workloads.nasa import build_nasa_database, nasa_constraints

        document = build_nasa_database(dataset_count, seed=seed)
        constraints = nasa_constraints()
        for kind in ("opt", "app", "sub", "top"):
            scheme = build_scheme(document, constraints, kind)
            assert check_enforcement(document, constraints, scheme) == [], kind
