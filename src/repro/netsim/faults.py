"""Deterministic fault injection for the modelled channel (chaos testing).

A :class:`FaultPolicy` is a seeded random schedule of wire faults — drop,
delay, corrupt-bytes, truncate, duplicate — with independent rates per
direction.  A :class:`FaultyChannel` applies the policy to every
:meth:`~repro.netsim.channel.Channel.transfer`, so chaos tests drive the
*real* query path: corrupted payloads reach the real integrity envelope,
drops reach the real retry loop.

Determinism is load-bearing: the policy consumes one ``random.Random``
stream in a fixed draw order per transfer, so the same seed, the same
rates and the same traffic produce the identical fault schedule — and
therefore identical retry counts in every :class:`~repro.core.system
.QueryTrace` (asserted in ``tests/test_chaos_end_to_end.py``).

Rollback attacker
-----------------

Byte-mangling faults are caught by the MAC; the *rollback* fault models
a strictly stronger adversary: the channel (standing in for a malicious
or lagging server) records each validly-sealed response and, on a seeded
``rollback`` decision, substitutes the **earliest recorded** response
for the same logical request — a perfectly-MACed pre-update snapshot.
Responses are keyed by the request payload with its freshness header
stripped (:func:`repro.core.integrity.envelope_payload`), because the
sealed request bytes change at every commit epoch while the logical
query underneath does not.  ``FaultPolicy(pin_stale=True)`` is the
cluster variant: the replica behind this channel *always* serves its
first-recorded snapshot, modelling a replica frozen at an old epoch
until :meth:`FaultyChannel.resync` clears its recorded state.
Cross-request substitution is deliberately not modelled — it would
decode to a wrong-but-accepted answer, which is outside the freshness
threat (and already excluded by the per-block tags for block payloads).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.netsim.channel import Channel
from repro.perf import counters


class TransferDropped(Exception):
    """The channel dropped a payload (modelled packet loss)."""


@dataclass(frozen=True)
class FaultRates:
    """Per-direction fault probabilities, each independently in [0, 1]."""

    drop: float = 0.0
    corrupt: float = 0.0
    truncate: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    #: Replay a recorded earlier-epoch response (valid MAC, stale state).
    rollback: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "drop", "corrupt", "truncate", "duplicate", "delay", "rollback"
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} rate must be in [0, 1], got {rate}")

    @property
    def any(self) -> bool:
        return bool(
            self.drop or self.corrupt or self.truncate
            or self.duplicate or self.delay or self.rollback
        )


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, recorded in the policy's schedule."""

    transfer_index: int
    direction: str
    kind: str  # "drop" | "corrupt" | "truncate" | "duplicate" | "delay"
    detail: int  # byte offset (corrupt), new length (truncate), else 0


@dataclass(frozen=True)
class _Decision:
    drop: bool = False
    duplicate: bool = False
    delay_seconds: float = 0.0
    corrupt_offset: int | None = None
    corrupt_xor: int = 0
    truncate_to: int | None = None
    rollback: bool = False


class FaultPolicy:
    """Seeded schedule of wire faults, with per-direction rates.

    Draw order per transfer is fixed (duplicate, delay, drop, corrupt,
    truncate, rollback — plus the conditional detail draws), which is
    what makes the schedule a pure function of (seed, rates, traffic).
    The rollback draw only consumes randomness when its rate is nonzero,
    so schedules of pre-rollback policies are byte-for-byte unchanged.

    ``pin_stale=True`` makes the channel *deterministically* stale: it
    always serves the first response it recorded for each logical
    request, independent of any random draw — the "one replica pinned at
    an old epoch" cluster scenario.
    """

    def __init__(
        self,
        seed: int = 0,
        client_to_server: FaultRates | None = None,
        server_to_client: FaultRates | None = None,
        delay_seconds: float = 0.05,
        pin_stale: bool = False,
    ) -> None:
        self.seed = seed
        self.client_to_server = client_to_server or FaultRates()
        self.server_to_client = server_to_client or FaultRates()
        self.delay_seconds = delay_seconds
        self.pin_stale = pin_stale
        self.schedule: list[FaultEvent] = []
        self._rng = random.Random(seed)
        self._transfer_index = 0

    @classmethod
    def symmetric(cls, seed: int = 0, **rates: float) -> "FaultPolicy":
        """Same :class:`FaultRates` in both directions (test convenience)."""
        shared = FaultRates(**rates)
        return cls(seed, client_to_server=shared, server_to_client=shared)

    def rates_for(self, direction: str) -> FaultRates:
        if direction == "client->server":
            return self.client_to_server
        return self.server_to_client

    def decide(self, direction: str, size_bytes: int) -> _Decision:
        """Sample the faults for one transfer (advances the schedule)."""
        index = self._transfer_index
        self._transfer_index += 1
        rates = self.rates_for(direction)
        if not rates.any:
            return _Decision()
        rng = self._rng

        duplicate = rng.random() < rates.duplicate
        delay = self.delay_seconds if rng.random() < rates.delay else 0.0
        drop = rng.random() < rates.drop
        corrupt_offset: int | None = None
        corrupt_xor = 0
        if rng.random() < rates.corrupt and size_bytes > 0:
            corrupt_offset = rng.randrange(size_bytes)
            corrupt_xor = rng.randrange(1, 256)  # never the identity flip
        truncate_to: int | None = None
        if rng.random() < rates.truncate and size_bytes > 0:
            truncate_to = rng.randrange(size_bytes)
        # Guarded draw: zero-rollback policies keep their exact pre-epoch
        # RNG stream, so historical seeded schedules stay byte-identical.
        rollback = rates.rollback > 0 and rng.random() < rates.rollback

        for kind, hit, detail in (
            ("duplicate", duplicate, 0),
            ("delay", bool(delay), 0),
            ("drop", drop, 0),
            ("corrupt", corrupt_offset is not None, corrupt_offset or 0),
            ("truncate", truncate_to is not None, truncate_to or 0),
            ("rollback", rollback, 0),
        ):
            if hit:
                self.schedule.append(
                    FaultEvent(index, direction, kind, detail)
                )
        return _Decision(
            drop=drop,
            duplicate=duplicate,
            delay_seconds=delay,
            corrupt_offset=corrupt_offset,
            corrupt_xor=corrupt_xor,
            truncate_to=truncate_to,
            rollback=rollback,
        )

    def schedule_signature(self) -> tuple[tuple[int, str, str, int], ...]:
        """Hashable form of the schedule, for determinism assertions."""
        return tuple(
            (e.transfer_index, e.direction, e.kind, e.detail)
            for e in self.schedule
        )


@dataclass
class FaultyChannel(Channel):
    """A :class:`Channel` that injects faults from a :class:`FaultPolicy`.

    Accounting still happens for every attempt (dropped bytes were still
    sent), and a duplicated payload is billed twice — so bandwidth sweeps
    under faults stay honest.  Semantically a duplicate is idempotent for
    this request/response protocol; only the accounting sees it.

    The channel doubles as the rollback attacker's vantage point (see
    the module docstring): it remembers the first sealed response per
    logical request and substitutes it on a ``rollback`` decision (or
    always, under ``pin_stale``).  Substitution happens *before* the
    send, because the stale server genuinely transmits the stale bytes —
    bandwidth accounting must bill what actually crossed the wire.
    """

    policy: FaultPolicy = field(default_factory=FaultPolicy)
    #: Diagnostic breadcrumb: the kind of the last fault this channel
    #: injected, surfaced in QueryFailedError/ClusterDegradedError text.
    last_fault_kind: str | None = field(
        default=None, repr=False, compare=False
    )
    #: First-recorded sealed response *sequence* per stripped request
    #: payload.  A streamed response is several server→client transfers
    #: for one request, so snapshots are positional: replaying position
    #: ``i`` of the recorded sequence yields a coherent old-epoch stream.
    _snapshots: dict[bytes, list[bytes]] = field(
        default_factory=dict, repr=False, compare=False
    )
    _last_request_key: bytes | None = field(
        default=None, repr=False, compare=False
    )
    _response_seq: int = field(default=0, repr=False, compare=False)

    def resync(self) -> None:
        """Model the stale replica catching up to the committed state.

        Clears the recorded-snapshot store, so the next response per
        request is re-recorded at the current epoch; called by the
        replica set when it re-admits a demoted replica.
        """
        self._snapshots.clear()
        self._last_request_key = None
        self._response_seq = 0

    def _apply_rollback(
        self, direction: str, payload: bytes, decision: _Decision
    ) -> bytes:
        """Record responses; substitute a stale snapshot when attacking."""
        from repro.core.integrity import envelope_payload

        if direction == "client->server":
            self._last_request_key = envelope_payload(payload)
            self._response_seq = 0
            return payload
        key = self._last_request_key
        if key is None:
            return payload
        seq = self._response_seq
        self._response_seq += 1
        recorded = self._snapshots.setdefault(key, [])
        if seq >= len(recorded):
            recorded.append(payload)
            return payload
        stale = recorded[seq]
        attacking = decision.rollback or self.policy.pin_stale
        if attacking and stale != payload:
            counters.add("faults_rolled_back")
            self._annotate_fault("rollback")
            return stale
        return payload

    def transfer(
        self, direction: str, label: str, payload: bytes
    ) -> tuple[bytes, float]:
        decision = self.policy.decide(direction, len(payload))
        payload = self._apply_rollback(direction, payload, decision)
        seconds = self.send(direction, label, len(payload))
        if decision.duplicate:
            seconds += self.send(direction, f"{label}+dup", len(payload))
            counters.add("faults_duplicated")
            self._annotate_fault("duplicate")
        if decision.delay_seconds:
            seconds += decision.delay_seconds
            counters.add("faults_delayed")
            self._annotate_fault("delay")
        if decision.drop:
            counters.add("faults_dropped")
            self._annotate_fault("drop")
            raise TransferDropped(f"{direction} {label!r} dropped")
        if decision.truncate_to is not None:
            payload = payload[: decision.truncate_to]
            counters.add("faults_truncated")
            self._annotate_fault("truncate")
        if decision.corrupt_offset is not None and decision.corrupt_offset < len(payload):
            mutated = bytearray(payload)
            mutated[decision.corrupt_offset] ^= decision.corrupt_xor
            payload = bytes(mutated)
            counters.add("faults_corrupted")
            self._annotate_fault("corrupt")
        self.observe_transfer(direction, label, len(payload), seconds)
        return payload, seconds

    def _annotate_fault(self, kind: str) -> None:
        """Tag the caller's open span with an injected-fault event.

        The ambient span at transfer time is the query's root (or its
        current attempt), so the slow-query log and rendered trace trees
        show *which* faults a slow or retried query actually hit.
        """
        self.last_fault_kind = kind
        obs = self.obs
        if obs is None or not obs.enabled:
            return
        span = obs.tracer.current()
        if span is not None:
            span.add_event("faults", kind)
