"""Tests for the document-order axes: following / preceding (§5.1).

The paper notes that "XPath axes descendant, following, following-sibling
(and their symmetric counterparts) are all computed efficiently just as
using a regular (continuous) interval index": ``following(x, y)`` holds
exactly when y's DSI interval starts after x's ends.  These tests pin the
tree-walk semantics and verify the interval characterization against it.
"""

import pytest

from repro.core.dsi import assign_intervals
from repro.crypto.prf import DeterministicRandom
from repro.xmldb.node import Element
from repro.xmldb.parser import parse_document
from repro.xpath.evaluator import evaluate


@pytest.fixture
def doc():
    return parse_document(
        """
        <r>
          <a><x>1</x><y>2</y></a>
          <b><x>3</x></b>
          <c><d><x>4</x></d><y>5</y></c>
        </r>
        """
    )


def values(nodes):
    return [n.text_value() for n in nodes]


class TestFollowingPreceding:
    def test_following_after_subtree(self, doc):
        # Everything after <a>'s subtree: b, its x, c, d, x, y.
        result = evaluate(doc, "/r/a/following::x")
        assert values(result) == ["3", "4"]

    def test_following_excludes_descendants(self, doc):
        result = evaluate(doc, "/r/a/following::*")
        tags = [n.tag for n in result]
        assert "y" in tags  # c's y, which follows a
        assert tags.count("x") == 2  # a's own x is NOT following

    def test_following_from_nested(self, doc):
        # From the x inside a: its sibling y follows, then b, c subtrees.
        result = evaluate(doc, "/r/a/x/following::y")
        assert values(result) == ["2", "5"]

    def test_preceding_before_subtree(self, doc):
        result = evaluate(doc, "/r/c/preceding::x")
        assert values(result) == ["1", "3"]

    def test_preceding_excludes_ancestors(self, doc):
        result = evaluate(doc, "/r/c/d/x/preceding::*")
        tags = [n.tag for n in result]
        assert "r" not in tags and "c" not in tags and "d" not in tags
        assert "a" in tags and "b" in tags

    def test_ancestor_or_self(self, doc):
        result = evaluate(doc, "/r/c/d/x/ancestor-or-self::*")
        tags = [n.tag for n in result]
        assert tags == ["r", "c", "d", "x"]  # document order

    def test_following_preceding_partition(self, doc):
        """following ∪ preceding ∪ ancestors ∪ descendants ∪ self = all."""
        target = evaluate(doc, "/r/c/d")[0]
        following = set(
            id(n) for n in evaluate(doc, "/r/c/d/following::*")
        )
        preceding = set(
            id(n) for n in evaluate(doc, "/r/c/d/preceding::*")
        )
        ancestors = {id(n) for n in target.ancestors()}
        subtree = {id(n) for n in target.iter() if isinstance(n, Element)}
        every_element = {
            id(n) for n in doc.root.iter() if isinstance(n, Element)
        }
        union = following | preceding | ancestors | subtree
        assert union == every_element
        assert not (following & preceding)


class TestIntervalCharacterization:
    def test_following_iff_interval_after(self, doc):
        """The §5.1 claim: following(x, y) ⇔ y.low > x.high."""
        intervals = assign_intervals(
            doc, DeterministicRandom(b"f" * 16, "axes")
        )
        elements = [
            n for n in doc.root.iter() if isinstance(n, Element)
        ]
        for source in elements:
            following_ids = {
                id(n) for n in evaluate(
                    doc,
                    _path_to(source) + "/following::*",
                )
            }
            for candidate in elements:
                if candidate is source:
                    continue
                geometric = (
                    intervals[candidate.node_id].low
                    > intervals[source.node_id].high
                )
                assert geometric == (id(candidate) in following_ids), (
                    source.tag,
                    candidate.tag,
                )


def _path_to(element: Element) -> str:
    """Absolute child path addressing this exact element by position."""
    pieces = []
    node = element
    while node.parent is not None:
        siblings = [
            c for c in node.parent.children
            if isinstance(c, Element) and c.tag == node.tag
        ]
        index = siblings.index(node) + 1
        pieces.append(f"{node.tag}[{index}]")
        node = node.parent
    pieces.append(node.tag)
    return "/" + "/".join(reversed(pieces))